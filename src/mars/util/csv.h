// CSV emission for benchmark results (machine-readable companion to the
// ASCII tables; docs/EXPERIMENTS.md references these files).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mars {

class CsvWriter {
 public:
  /// Writes the header immediately. The writer does not own the stream.
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }

  /// RFC-4180 style field quoting (only when needed).
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
  std::size_t arity_;
  std::size_t num_rows_ = 0;
};

}  // namespace mars
