// Slab-based bump allocator for hot-loop object reuse.
//
// The serving event loop admits millions of requests per run; giving every
// admitted request its own heap allocations (cloned task nodes, dependency
// vectors) made operator new the dominant cost at fleet scale. An Arena
// instead hands out raw bytes from large retained slabs: allocate() is a
// pointer bump, reset() rewinds every slab without returning memory to the
// OS, and slabs grow geometrically in count (never in-place), so long runs
// settle into zero steady-state heap allocations.
//
// There is deliberately no per-object deallocate: lifetimes end
// collectively at reset() (or when the arena dies). Callers that recycle
// fixed-size blocks individually layer an intrusive free list on top — see
// the instance pool in serve/scheduler.cpp.
//
// Not thread-safe: one arena per engine (the sharded fleet gives each
// shard's event loop its own).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace mars::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  /// `slab_bytes` is the default size of each slab; single allocations
  /// larger than it get a dedicated slab of exactly their size. Throws
  /// InvalidArgument when slab_bytes == 0.
  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` of storage aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). The block is valid until reset() or
  /// destruction. bytes == 0 returns a usable (non-null) pointer.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Rewinds every slab: previously returned blocks are invalidated, the
  /// slab memory is retained for reuse. After a reset, an identical
  /// allocation sequence touches the heap zero times.
  void reset();

  /// Number of slabs currently owned (never shrinks).
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }
  /// Total bytes reserved across all slabs.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t used() const { return used_; }
  /// allocate() calls since construction (reset does not clear this).
  [[nodiscard]] std::size_t allocation_count() const { return allocations_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Appends a slab of at least `min_bytes` and makes it active.
  void add_slab(std::size_t min_bytes);

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  // slab currently being bumped
  std::size_t offset_ = 0;  // bump position inside the active slab
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t allocations_ = 0;
};

}  // namespace mars::util
