#include "mars/util/table.h"

#include <algorithm>
#include <sstream>

#include "mars/util/error.h"

namespace mars {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MARS_CHECK_ARG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MARS_CHECK_ARG(row.size() == header_.size(),
                 "row arity " << row.size() << " != header arity "
                              << header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

std::size_t Table::num_rows() const {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (!row.empty()) ++n;
  }
  return n;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
    return os.str();
  };
  auto render_rule = [&]() {
    std::ostringstream os;
    os << '+';
    for (std::size_t width : widths) os << std::string(width + 2, '-') << '+';
    os << '\n';
    return os.str();
  };

  std::ostringstream os;
  os << render_rule() << render_line(header_) << render_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << render_rule();
    } else {
      os << render_line(row);
    }
  }
  os << render_rule();
  return os.str();
}

}  // namespace mars
