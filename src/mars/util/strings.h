// Small string helpers shared by reports, tables and serialisers.
#pragma once

#include <string>
#include <vector>

namespace mars {

/// Join `parts` with `sep` ("a, b, c").
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// Fixed-precision double formatting without trailing-zero noise
/// ("1.5", "0.832", "12").
[[nodiscard]] std::string format_double(double value, int max_decimals = 3);

/// Human-readable count with SI suffix ("61.1M", "3.68G", "727M").
[[nodiscard]] std::string si_count(double value, int decimals = 3);

/// Percentage with sign, paper style ("-32.2%").
[[nodiscard]] std::string signed_percent(double fraction, int decimals = 1);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& text, const std::string& prefix);

/// Split on a single character, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& text, char sep);

}  // namespace mars
