#include "mars/util/strings.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mars {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int max_decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", max_decimals, value);
  std::string text(buffer);
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  if (text == "-0") text = "0";
  return text;
}

std::string si_count(double value, int decimals) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr Scale kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "K"}};
  for (const auto& scale : kScales) {
    if (std::abs(value) >= scale.factor) {
      return format_double(value / scale.factor, decimals) + scale.suffix;
    }
  }
  return format_double(value, decimals);
}

std::string signed_percent(double fraction, int decimals) {
  double percent = fraction * 100.0;
  std::string body = format_double(std::abs(percent), decimals);
  return (percent < 0 ? "-" : "+") + body + "%";
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace mars
