#include "mars/util/logging.h"

#include <iostream>

namespace mars {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel set_log_level(LogLevel level) {
  LogLevel previous = g_level;
  g_level = level;
  return previous;
}

LogLevel log_level() { return g_level; }

std::ostream* set_log_sink(std::ostream* sink) {
  std::ostream* previous = g_sink;
  g_sink = sink;
  return previous;
}

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  os << "[mars " << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace mars
