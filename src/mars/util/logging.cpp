#include "mars/util/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace mars {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::ostream* g_sink = nullptr;  // guarded by g_log_mutex
std::mutex g_log_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel set_log_level(LogLevel level) {
  return g_level.exchange(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::ostream* set_log_sink(std::ostream* sink) {
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream* previous = g_sink;
  g_sink = sink;
  return previous;
}

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  // One mutex-guarded write per statement: messages from concurrent worker
  // threads come out whole, never interleaved mid-line.
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  os << "[mars " << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace mars
