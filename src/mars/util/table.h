// ASCII table rendering for benchmark harnesses and reports.
//
// The benchmark binaries regenerate the paper's tables; this renderer keeps
// their output aligned and diffable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mars {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator row.
  void add_separator();

  [[nodiscard]] std::size_t num_rows() const;
  [[nodiscard]] std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& table) {
    return os << table.render();
  }

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mars
