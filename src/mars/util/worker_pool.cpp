#include "mars/util/worker_pool.h"

#include <string>

#include "mars/obs/trace.h"
#include "mars/util/error.h"

namespace mars::util {
namespace {

/// Runs one parallel_for chunk, wrapped in a wall-clock trace span on the
/// worker's track when a recorder is installed (worker 0 is the calling
/// thread). No allocation or locking on the no-recorder path. Spans for
/// throwing chunks are dropped — the exception itself is the record there.
void run_chunk(int worker, std::size_t begin, std::size_t end,
               const WorkerPool::ChunkFn& fn) {
  obs::TraceRecorder* rec = obs::trace();
  if (rec == nullptr) {
    fn(begin, end);
    return;
  }
  const int track =
      rec->track(obs::Clock::kWall, "pool worker " + std::to_string(worker));
  const Seconds start = rec->wall_now();
  fn(begin, end);
  rec->complete(obs::Clock::kWall, track, "chunk", start,
                rec->wall_now() - start,
                {{"begin", JsonValue::integer(static_cast<long long>(begin))},
                 {"end", JsonValue::integer(static_cast<long long>(end))}});
}

}  // namespace

WorkerPool::WorkerPool(int threads) : threads_(threads) {
  MARS_CHECK_ARG(threads >= 1, "WorkerPool needs >= 1 thread, got " << threads);
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::pair<std::size_t, std::size_t> WorkerPool::chunk(std::size_t n,
                                                      int threads,
                                                      int worker) {
  const auto t = static_cast<std::size_t>(threads);
  const auto w = static_cast<std::size_t>(worker);
  return {n * w / t, n * (w + 1) / t};
}

void WorkerPool::parallel_for(std::size_t n, const ChunkFn& fn) {
  if (n == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MARS_CHECK(job_ == nullptr, "WorkerPool::parallel_for re-entered");
    job_ = &fn;
    job_size_ = n;
    errors_.assign(static_cast<std::size_t>(threads_), nullptr);
    remaining_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  // The caller is chunk 0; workers 1..threads-1 run concurrently.
  const auto [begin, end] = chunk(n, threads_, 0);
  try {
    if (begin < end) run_chunk(0, begin, end, fn);
  } catch (...) {
    errors_[0] = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  // Deterministic propagation: the lowest-chunk failure wins, not the
  // first to be *observed*.
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

void WorkerPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  while (true) {
    const ChunkFn* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      n = job_size_;
    }
    const auto [begin, end] = chunk(n, threads_, worker);
    try {
      if (begin < end) run_chunk(worker, begin, end, *job);
    } catch (...) {
      errors_[static_cast<std::size_t>(worker)] = std::current_exception();
    }
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      last = --remaining_ == 0;
    }
    if (last) done_cv_.notify_all();
  }
}

}  // namespace mars::util
