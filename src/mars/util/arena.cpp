#include "mars/util/arena.h"

#include "mars/util/error.h"

namespace mars::util {

Arena::Arena(std::size_t slab_bytes) : slab_bytes_(slab_bytes) {
  MARS_CHECK_ARG(slab_bytes > 0, "arena slab size must be positive");
}

void Arena::add_slab(std::size_t min_bytes) {
  Slab slab;
  slab.size = std::max(slab_bytes_, min_bytes);
  slab.data = std::make_unique<std::byte[]>(slab.size);
  capacity_ += slab.size;
  slabs_.push_back(std::move(slab));
  active_ = slabs_.size() - 1;
  offset_ = 0;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  MARS_CHECK_ARG(align > 0 && (align & (align - 1)) == 0,
                 "arena alignment must be a power of two, got " << align);
  MARS_CHECK_ARG(align <= alignof(std::max_align_t),
                 "arena alignment " << align << " exceeds max_align_t");
  ++allocations_;
  if (slabs_.empty()) add_slab(bytes);
  for (;;) {
    Slab& slab = slabs_[active_];
    // operator new[] storage is max_align_t-aligned, so aligning the
    // offset aligns the pointer.
    const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= slab.size) {
      used_ += (aligned - offset_) + bytes;
      offset_ = aligned + bytes;
      return slab.data.get() + aligned;
    }
    // Advance through retained slabs before growing; a slab too small for
    // this request may still serve later (smaller) ones, but skipping it
    // keeps the allocator O(1) per call and reset() cheap.
    if (active_ + 1 < slabs_.size()) {
      ++active_;
      offset_ = 0;
    } else {
      add_slab(bytes + align);
    }
  }
}

void Arena::reset() {
  active_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace mars::util
