#include "mars/util/json.h"

#include <cmath>
#include <cstdio>

#include "mars/util/error.h"

namespace mars {

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(long long value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

double JsonValue::as_number() const {
  if (kind_ == Kind::kInteger) return static_cast<double>(integer_);
  MARS_CHECK_ARG(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

long long JsonValue::as_integer() const {
  MARS_CHECK_ARG(kind_ == Kind::kInteger, "JSON value is not an integer");
  return integer_;
}

bool JsonValue::as_boolean() const {
  MARS_CHECK_ARG(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

const std::string& JsonValue::as_string() const {
  MARS_CHECK_ARG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  MARS_CHECK_ARG(kind_ == Kind::kArray, "at() on non-array JSON value");
  MARS_CHECK_ARG(index < children_.size(),
                 "JSON array index " << index << " out of range (size "
                                     << children_.size() << ")");
  return children_[index].second;
}

bool JsonValue::contains(const std::string& key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [name, child] : children_) {
    if (name == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  MARS_CHECK_ARG(kind_ == Kind::kObject, "get() on non-object JSON value");
  for (const auto& [name, child] : children_) {
    if (name == key) return child;
  }
  throw InvalidArgument("JSON object has no key '" + key + "'");
}

JsonValue& JsonValue::push(JsonValue value) {
  MARS_CHECK_ARG(kind_ == Kind::kArray, "push on non-array JSON value");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  MARS_CHECK_ARG(kind_ == Kind::kObject, "set on non-object JSON value");
  children_.emplace_back(key, std::move(value));
  return *this;
}

std::string JsonValue::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";
        break;
      }
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.12g", number_);
      out += buffer;
      break;
    }
    case Kind::kInteger:
      out += std::to_string(integer_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& [key, child] : children_) {
        if (!first) out += ',';
        first = false;
        child.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, child] : children_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        child.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

/// Strict recursive-descent JSON parser over a single document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("bad JSON at offset " + std::to_string(pos_) + ": " +
                          what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  // Parsing recurses once per nesting level; cap it so a hostile or
  // corrupt document throws instead of overflowing the stack (callers
  // like the mapping cache rely on every failure being catchable).
  static constexpr int kMaxDepth = 200;

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid token");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid token");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid token");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 200 levels");
    expect('{');
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return object;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(key, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return object;
    }
  }

  JsonValue parse_array() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 200 levels");
    expect('[');
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return array;
    }
    for (;;) {
      array.push(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  /// \uXXXX escapes, UTF-8 encoded. Surrogate pairs are not needed by our
  /// writer (it only escapes control characters) and are rejected.
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escapes unsupported");
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '+') fail("JSON numbers cannot start with '+'");
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t consumed = 0;
    if (integral) {
      try {
        const long long value = std::stoll(token, &consumed);
        if (consumed == token.size()) return JsonValue::integer(value);
      } catch (const std::out_of_range&) {
        integral = false;  // magnitude overflow: fall back to double
      } catch (const std::exception&) {
        consumed = 0;
      }
    }
    if (!integral || consumed != token.size()) {
      try {
        const double value = std::stod(token, &consumed);
        if (consumed == token.size()) return JsonValue::number(value);
      } catch (const std::exception&) {
      }
    }
    fail("invalid number '" + token + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace mars
