#include "mars/util/json.h"

#include <cmath>
#include <cstdio>

#include "mars/util/error.h"

namespace mars {

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(long long value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push(JsonValue value) {
  MARS_CHECK_ARG(kind_ == Kind::kArray, "push on non-array JSON value");
  children_.emplace_back(std::string(), std::move(value));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  MARS_CHECK_ARG(kind_ == Kind::kObject, "set on non-object JSON value");
  children_.emplace_back(key, std::move(value));
  return *this;
}

std::string JsonValue::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";
        break;
      }
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.12g", number_);
      out += buffer;
      break;
    }
    case Kind::kInteger:
      out += std::to_string(integer_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& [key, child] : children_) {
        if (!first) out += ',';
        first = false;
        child.dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, child] : children_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        child.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace mars
