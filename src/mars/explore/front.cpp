#include "mars/explore/front.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mars/util/error.h"

namespace mars::explore {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical order: objectives lexicographically, then key.
bool canonical_less(const FrontPoint& a, const FrontPoint& b) {
  if (a.objectives != b.objectives) return a.objectives < b.objectives;
  return a.key < b.key;
}

}  // namespace

bool dominates(const FrontPoint& a, const FrontPoint& b) {
  MARS_CHECK_ARG(a.objectives.size() == b.objectives.size(),
                 "dominance between arity " << a.objectives.size() << " and "
                                            << b.objectives.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.objectives.size(); ++i) {
    if (a.objectives[i] > b.objectives[i]) return false;
    if (a.objectives[i] < b.objectives[i]) strictly_better = true;
  }
  return strictly_better;
}

Front::Front(int arity) : arity_(arity) {
  MARS_CHECK_ARG(arity >= 1, "front arity must be >= 1, got " << arity);
}

bool Front::insert(FrontPoint point) {
  MARS_CHECK_ARG(static_cast<int>(point.objectives.size()) == arity_,
                 "front of arity " << arity_ << " offered a point of arity "
                                   << point.objectives.size());
  for (const FrontPoint& member : points_) {
    if (dominates(member, point)) return false;
  }
  std::erase_if(points_,
                [&](const FrontPoint& member) { return dominates(point, member); });
  points_.push_back(std::move(point));
  return true;
}

std::vector<FrontPoint> Front::points() const {
  std::vector<FrontPoint> sorted = points_;
  std::sort(sorted.begin(), sorted.end(), canonical_less);
  return sorted;
}

std::vector<double> Front::crowding(const std::vector<FrontPoint>& points) {
  const std::size_t n = points.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  const std::size_t arity = points[0].objectives.size();

  std::vector<std::size_t> order(n);
  for (std::size_t m = 0; m < arity; ++m) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    // Objective value first; canonical order as the tie-break so equal
    // values sort deterministically.
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (points[a].objectives[m] != points[b].objectives[m]) {
        return points[a].objectives[m] < points[b].objectives[m];
      }
      return canonical_less(points[a], points[b]);
    });
    const double lo = points[order.front()].objectives[m];
    const double hi = points[order.back()].objectives[m];
    distance[order.front()] = kInf;
    distance[order.back()] = kInf;
    if (hi <= lo) continue;  // degenerate objective: no interior spread
    for (std::size_t i = 1; i + 1 < n; ++i) {
      distance[order[i]] += (points[order[i + 1]].objectives[m] -
                             points[order[i - 1]].objectives[m]) /
                            (hi - lo);
    }
  }
  return distance;
}

std::vector<FrontPoint> Front::top(int n) const {
  std::vector<FrontPoint> kept = points();
  if (n <= 0) return kept;
  while (kept.size() > static_cast<std::size_t>(n)) {
    const std::vector<double> distance = crowding(kept);
    // Remove the least-crowded point; among ties, the one latest in
    // canonical order (keeps the lexicographically-smaller points).
    std::size_t victim = 0;
    for (std::size_t i = 1; i < kept.size(); ++i) {
      if (distance[i] <= distance[victim]) victim = i;
    }
    kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return kept;
}

double hypervolume(const std::vector<FrontPoint>& points,
                   const std::vector<double>& ref) {
  const std::size_t arity = ref.size();
  MARS_CHECK_ARG(arity == 2 || arity == 3,
                 "hypervolume supports 2 or 3 objectives, got " << arity);
  std::vector<FrontPoint> inside;
  for (const FrontPoint& p : points) {
    MARS_CHECK_ARG(p.objectives.size() == arity,
                   "hypervolume point arity " << p.objectives.size()
                                              << " != reference " << arity);
    bool within = true;
    for (std::size_t m = 0; m < arity; ++m) {
      within = within && p.objectives[m] < ref[m];
    }
    if (within) inside.push_back(p);
  }
  if (inside.empty()) return 0.0;

  // 2-D staircase: sweep x ascending, accumulate strips down to the best
  // y seen so far.
  const auto hv2 = [](std::vector<FrontPoint> pts, double rx, double ry) {
    std::sort(pts.begin(), pts.end(), canonical_less);
    double area = 0.0;
    double best_y = ry;
    for (const FrontPoint& p : pts) {
      const double y = std::min(p.objectives[1], best_y);
      if (y < best_y) {
        area += (rx - p.objectives[0]) * (best_y - y);
        best_y = y;
      }
    }
    return area;
  };
  if (arity == 2) return hv2(std::move(inside), ref[0], ref[1]);

  // 3-D by slab decomposition over z: between consecutive z levels the
  // dominated cross-section is the 2-D hypervolume of the points at or
  // below that level.
  std::vector<double> levels;
  for (const FrontPoint& p : inside) levels.push_back(p.objectives[2]);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  double volume = 0.0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double z_lo = levels[i];
    const double z_hi = i + 1 < levels.size() ? levels[i + 1] : ref[2];
    std::vector<FrontPoint> slab;
    for (const FrontPoint& p : inside) {
      if (p.objectives[2] <= z_lo) {
        slab.push_back({p.key, {p.objectives[0], p.objectives[1]}});
      }
    }
    volume += hv2(std::move(slab), ref[0], ref[1]) * (z_hi - z_lo);
  }
  return volume;
}

}  // namespace mars::explore
