#include "mars/explore/space.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "mars/topology/presets.h"
#include "mars/util/error.h"
#include "mars/util/strings.h"

namespace mars::explore {
namespace {

constexpr const char* kFamilies[] = {"clique", "ring", "grouped2"};
// Host bandwidth for the generated families: the F1 tier (2 Gb/s). The
// host path is baseline infrastructure, identical for every point, so it
// is not a search axis and does not enter the hardware cost.
constexpr double kHostGbps = 2.0;

bool known_family(const std::string& name) {
  for (const char* family : kFamilies) {
    if (name == family) return true;
  }
  return false;
}

int parse_axis_int(const std::string& token) {
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  MARS_CHECK_ARG(end != token.c_str() && *end == '\0' && value >= 2 && value <= 32,
                 "design space accs must be an integer in [2, 32], got '"
                     << token << "'");
  return static_cast<int>(value);
}

double parse_axis_double(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  MARS_CHECK_ARG(end != token.c_str() && *end == '\0' && value > 0.0,
                 "design space bw must be a positive Gb/s value, got '" << token
                                                                       << "'");
  return value;
}

std::string format_gbps(double gbps) { return format_double(gbps, 6); }

/// Expands one `menus` token into concrete design-name lists.
std::vector<std::vector<std::string>> expand_menu_token(const std::string& token) {
  const std::vector<std::string>& names = accel::table2_design_names();
  if (token == "full") return {names};
  if (token == "solo") {
    std::vector<std::vector<std::string>> out;
    for (const std::string& name : names) out.push_back({name});
    return out;
  }
  if (token == "pairs") {
    std::vector<std::vector<std::string>> out;
    for (std::size_t a = 0; a < names.size(); ++a) {
      for (std::size_t b = a + 1; b < names.size(); ++b) {
        out.push_back({names[a], names[b]});
      }
    }
    return out;
  }
  // Explicit '+'-joined design list, canonicalised to registry order.
  std::vector<std::string> menu;
  for (const std::string& name : split(token, '+')) {
    const bool known = std::find(names.begin(), names.end(), name) != names.end();
    MARS_CHECK_ARG(known, "design space menus must be full, solo, pairs or a "
                          "'+'-joined list of designs ("
                              << join(names, ", ") << "), got '" << name
                              << "'");
    MARS_CHECK_ARG(std::find(menu.begin(), menu.end(), name) == menu.end(),
                   "design space menu lists design '" << name << "' twice");
    menu.push_back(name);
  }
  std::sort(menu.begin(), menu.end(), [&](const std::string& a, const std::string& b) {
    return std::find(names.begin(), names.end(), a) <
           std::find(names.begin(), names.end(), b);
  });
  return {menu};
}

}  // namespace

std::string HardwarePoint::spec() const {
  std::ostringstream os;
  os << family << ":" << accelerators << "@" << format_gbps(link_gbps) << "/"
     << join(menu, "+");
  return os.str();
}

DesignSpace DesignSpace::default_space() {
  return parse("families=clique,ring,grouped2;accs=2,4,8;bw=2,8,16;menus=full,solo");
}

DesignSpace DesignSpace::parse(const std::string& text) {
  DesignSpace space;
  std::vector<std::string> menu_tokens;
  for (const std::string& clause : split(text, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    MARS_CHECK_ARG(eq != std::string::npos,
                   "design space clause must be axis=value[,value...], got '"
                       << clause << "'");
    const std::string axis = clause.substr(0, eq);
    const std::vector<std::string> values = split(clause.substr(eq + 1), ',');
    MARS_CHECK_ARG(!values.empty() && !values.front().empty(),
                   "design space axis '" << axis << "' has no values");
    if (axis == "families") {
      for (const std::string& value : values) {
        MARS_CHECK_ARG(known_family(value),
                       "design space families must be clique, ring or grouped2, "
                       "got '" << value << "'");
        if (std::find(space.families_.begin(), space.families_.end(), value) ==
            space.families_.end()) {
          space.families_.push_back(value);
        }
      }
    } else if (axis == "accs") {
      for (const std::string& value : values) {
        const int n = parse_axis_int(value);
        if (std::find(space.accs_.begin(), space.accs_.end(), n) ==
            space.accs_.end()) {
          space.accs_.push_back(n);
        }
      }
    } else if (axis == "bw") {
      for (const std::string& value : values) {
        const double gbps = parse_axis_double(value);
        if (std::find(space.bw_gbps_.begin(), space.bw_gbps_.end(), gbps) ==
            space.bw_gbps_.end()) {
          space.bw_gbps_.push_back(gbps);
        }
      }
    } else if (axis == "menus") {
      for (const std::string& value : values) menu_tokens.push_back(value);
    } else {
      MARS_CHECK_ARG(false,
                     "design space axis must be families, accs, bw or menus, "
                     "got '" << axis << "'");
    }
  }

  // Unset axes inherit the default grid.
  if (space.families_.empty()) {
    space.families_ = {"clique", "ring", "grouped2"};
  }
  if (space.accs_.empty()) space.accs_ = {2, 4, 8};
  if (space.bw_gbps_.empty()) space.bw_gbps_ = {2.0, 8.0, 16.0};
  if (menu_tokens.empty()) menu_tokens = {"full", "solo"};
  for (const std::string& token : menu_tokens) {
    for (std::vector<std::string>& menu : expand_menu_token(token)) {
      if (std::find(space.menus_.begin(), space.menus_.end(), menu) ==
          space.menus_.end()) {
        space.menus_.push_back(std::move(menu));
      }
    }
  }

  const bool has_grouped2 =
      std::find(space.families_.begin(), space.families_.end(), "grouped2") !=
      space.families_.end();
  if (has_grouped2) {
    for (const int n : space.accs_) {
      MARS_CHECK_ARG(n % 2 == 0,
                     "design space family grouped2 requires even accs, got "
                         << n);
    }
  }

  // Canonical spec: axes in fixed order, values in parsed order.
  {
    std::ostringstream os;
    os << "families=" << join(space.families_, ",");
    os << ";accs=";
    for (std::size_t i = 0; i < space.accs_.size(); ++i) {
      os << (i ? "," : "") << space.accs_[i];
    }
    os << ";bw=";
    for (std::size_t i = 0; i < space.bw_gbps_.size(); ++i) {
      os << (i ? "," : "") << format_gbps(space.bw_gbps_[i]);
    }
    os << ";menus=";
    for (std::size_t i = 0; i < space.menus_.size(); ++i) {
      os << (i ? "," : "") << join(space.menus_[i], "+");
    }
    space.spec_ = os.str();
  }

  // Presets first (the paper's F1 platform and the Table IV cloud
  // clique, full menu), then the cartesian grid row-major.
  const std::vector<std::string>& full_menu = accel::table2_design_names();
  space.points_.push_back({"f1", 8, 8.0, full_menu, true});
  space.points_.push_back({"clique", 8, 4.0, full_menu, true});
  space.num_presets_ = static_cast<int>(space.points_.size());
  for (const std::string& family : space.families_) {
    for (const int accs : space.accs_) {
      for (const double bw : space.bw_gbps_) {
        for (const std::vector<std::string>& menu : space.menus_) {
          space.points_.push_back({family, accs, bw, menu, false});
        }
      }
    }
  }
  return space;
}

std::array<int, 4> DesignSpace::dims() const {
  return {static_cast<int>(families_.size()), static_cast<int>(accs_.size()),
          static_cast<int>(bw_gbps_.size()), static_cast<int>(menus_.size())};
}

int DesignSpace::index_of(const std::array<int, 4>& coords) const {
  const std::array<int, 4> d = dims();
  for (int axis = 0; axis < 4; ++axis) {
    MARS_CHECK_ARG(coords[axis] >= 0 && coords[axis] < d[axis],
                   "design space coordinate " << axis << " out of range");
  }
  const int cartesian =
      ((coords[0] * d[1] + coords[1]) * d[2] + coords[2]) * d[3] + coords[3];
  return num_presets_ + cartesian;
}

std::array<int, 4> DesignSpace::coords_of(int index) const {
  MARS_CHECK_ARG(index >= num_presets_ &&
                     index < static_cast<int>(points_.size()),
                 "coords_of on non-cartesian point index " << index);
  const std::array<int, 4> d = dims();
  int rest = index - num_presets_;
  std::array<int, 4> coords{};
  coords[3] = rest % d[3];
  rest /= d[3];
  coords[2] = rest % d[2];
  rest /= d[2];
  coords[1] = rest % d[1];
  rest /= d[1];
  coords[0] = rest;
  return coords;
}

BuiltPoint DesignSpace::build(const HardwarePoint& point) const {
  BuiltPoint built;
  if (point.family == "f1") {
    built.topo = topology::f1_16xlarge();
  } else if (point.family == "clique") {
    built.topo = topology::fully_connected(point.accelerators,
                                           gbps(point.link_gbps), gbps(kHostGbps));
  } else if (point.family == "ring") {
    built.topo = topology::ring(point.accelerators, gbps(point.link_gbps),
                                gbps(kHostGbps));
  } else if (point.family == "grouped2") {
    built.topo = topology::grouped(2, point.accelerators / 2,
                                   gbps(point.link_gbps), gbps(kHostGbps));
  } else {
    MARS_CHECK_ARG(false, "unknown hardware family '" << point.family << "'");
  }
  for (const std::string& name : point.menu) {
    built.designs.add(accel::make_table2_design(name));
  }
  return built;
}

}  // namespace mars::explore
