// ExploreEngine: NSGA-II-style hardware-mapping co-search.
//
// The engine evolves *hardware points* (DesignSpace coordinates); pricing
// a point means running the inner plan::SearchEngine to find that
// hardware's best mapping, so the loop is a two-level search above the
// paper's own two-level GA. Differences from a textbook NSGA-II, all in
// service of determinism and the never-lose guarantee:
//   * The archive is the PointPricer memo — every point ever priced
//     stays, and the final Front is built from the whole archive, not
//     just the last generation. With an unbounded front this makes the
//     result a pure function of the set of priced points.
//   * Every DesignSpace preset (the fixed fleets the repo benchmarks
//     against) is priced in generation 0, before the budget is polled —
//     the emitted front always weakly dominates every preset.
//   * All RNG draws happen serially while breeding; pricing is the only
//     parallel stage (dedupe-then-parallel-price inside PointPricer), so
//     results are byte-identical at any `threads`.
//
// The budget counts *distinct hardware points priced* (each one inner
// search); it is polled between generations, like the plan engines poll
// between GA generations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mars/core/mars.h"
#include "mars/explore/front.h"
#include "mars/explore/objective.h"
#include "mars/explore/space.h"
#include "mars/plan/budget.h"
#include "mars/plan/engine.h"
#include "mars/serve/cache.h"

namespace mars::explore {

struct ExploreConfig {
  /// Zoo model whose mapping prices each hardware point.
  std::string model = "alexnet";
  DesignSpace space = DesignSpace::default_space();
  std::vector<Objective> objectives = {Objective::kMakespan, Objective::kEnergy,
                                       Objective::kCost};
  /// Inner mapper (plan::make_engine name) and its tuning. The tuning's
  /// `threads` is forced to 1 — explore parallelises across points.
  std::string mapper = "ga";
  core::MarsConfig tuning;
  /// Inner per-point search budget (0 = unbudgeted).
  long long search_evaluations = 0;
  /// Outer NSGA knobs.
  int population = 12;
  int generations = 6;
  double mutation_rate = 0.35;
  std::uint64_t seed = 1;
  /// Point-pricing threads (execution knob: byte-identical results at
  /// any value, excluded from spec_string).
  int threads = 1;
  /// Front truncation at read time (0 = unbounded). Note the never-lose
  /// guarantee is stated on the unbounded front: crowding truncation may
  /// drop non-dominated points, presets included.
  int front_size = 0;
};

struct ExploreResult {
  Front front;  // over config.objectives, unbounded
  /// Every priced outcome, in first-priced order (stable across thread
  /// counts and cache states).
  std::vector<PointOutcome> outcomes;
  /// engine="explore"; evaluations = distinct points priced; iterations =
  /// generations bred.
  plan::Provenance provenance;
  long long cache_hits = 0;
  /// Archive hypervolume after each generation, relative to a reference
  /// fixed by the generation-0 archive (1.1x its per-objective worst).
  std::vector<double> history;
};

class ExploreEngine {
 public:
  /// Validates the config (positive population/generations, mutation in
  /// [0,1], known mapper/model names resolve lazily in search).
  explicit ExploreEngine(ExploreConfig config);

  [[nodiscard]] const ExploreConfig& config() const { return config_; }

  /// Canonical identity: every result-affecting knob (threads excluded).
  [[nodiscard]] std::string spec_string() const;

  /// Runs the co-search. `cache` (optional) memoises inner searches
  /// across runs with the same fingerprints `mars_map map` uses.
  [[nodiscard]] ExploreResult search(const serve::MappingCache* cache = nullptr,
                                     const plan::Budget& budget = {},
                                     const plan::ProgressFn& progress = {}) const;

 private:
  ExploreConfig config_;
};

/// Deterministic front exporters: pure functions of the result's front
/// (truncated to config.front_size) and objective selection — no wall
/// clock, no cache provenance, byte-identical across threads, repeats
/// and cold/warm caches. Columns: the point identity axes, all three
/// measured objectives, the winner's set count and mapping digest, and
/// the inner engine name.
[[nodiscard]] std::string front_csv(const ExploreResult& result,
                                    const ExploreConfig& config);
[[nodiscard]] std::string front_json(const ExploreResult& result,
                                     const ExploreConfig& config);

}  // namespace mars::explore
