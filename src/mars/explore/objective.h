// Vector-valued fitness for the hardware co-search, and the pricer that
// turns a HardwarePoint into an objective vector.
//
// Every objective is a cost (minimised):
//   makespan — the inner mapping search's analytic critical path (s),
//   energy   — AnalyticalCostModel::mapping_energy of the winner (J),
//   cost     — relative hardware cost of the point (hardware_cost below).
//
// PointPricer owns the expensive part: one inner plan::SearchEngine run
// per distinct hardware point. It follows the PR 5 dedupe-then-parallel-
// price discipline — a serial sweep dedupes the requested points against
// the memo (first appearance = miss), the distinct misses are priced
// concurrently on a util::WorkerPool with results written by index, and
// outcomes are published serially in first-seen order — so priced
// outcomes (and everything derived from them) are byte-identical at any
// --threads. An optional serve::MappingCache composes transparently: the
// per-point fingerprint is the same one `mars_map map` and the serving
// stack use, so explore warms the same cache it reads.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mars/explore/front.h"
#include "mars/explore/space.h"
#include "mars/plan/budget.h"
#include "mars/plan/engine.h"
#include "mars/serve/cache.h"
#include "mars/util/worker_pool.h"

namespace mars::explore {

enum class Objective { kMakespan, kEnergy, kCost };

[[nodiscard]] std::string to_string(Objective objective);

/// Parses a comma-separated objective list ("makespan,energy,cost").
/// Throws InvalidArgument naming the offending value on an unknown name,
/// a duplicate, or an empty list.
[[nodiscard]] std::vector<Objective> parse_objectives(const std::string& text);

/// Canonical '+'-joined rendering for spec strings.
[[nodiscard]] std::string objectives_spec(const std::vector<Objective>& objectives);

/// Hardware cost constants (docs/EXPLORE.md): each card pays a board
/// baseline plus the worst-case area of any design it may be configured
/// into; each direct link pays per provisioned Gb/s. Host connectivity
/// is baseline infrastructure shared by every point, hence free.
inline constexpr double kCardBaseCost = 1.0;
inline constexpr double kLinkCostPerGbps = 0.02;

/// Relative hardware cost of one built point (deterministic, closed
/// form: cards x (base + max menu area) + sum of direct-link Gb/s).
[[nodiscard]] double hardware_cost(const BuiltPoint& built);

/// Everything measured for one priced hardware point. The objective
/// fields are pure functions of (model, point, inner-engine spec);
/// `from_cache` and `evaluations` describe this run and belong on
/// stderr, never in the exported front.
struct PointOutcome {
  HardwarePoint point;
  double makespan_s = 0.0;  // analytic critical path of the winner
  double energy_j = 0.0;    // mapping_energy of the winner
  double cost = 0.0;        // hardware_cost of the point
  int sets = 0;             // winner's accelerator-set count
  bool memory_ok = true;
  std::string engine;          // inner engine name
  std::string search_spec;     // inner engine identity incl. budget
  std::string mapping_digest;  // FNV-1a over the winner's rendering
  bool from_cache = false;
  long long evaluations = 0;  // inner search evaluations (0 on cache hit)

  [[nodiscard]] double objective(Objective objective) const;
  [[nodiscard]] FrontPoint front_point(
      const std::vector<Objective>& objectives) const;
};

class PointPricer {
 public:
  /// Keeps references to everything; the caller owns their lifetimes.
  /// `inner` must be a searching engine whose search() is const and
  /// thread-safe (all plan engines are); inner searches run single-
  /// threaded, the pricer parallelises across points instead.
  PointPricer(std::string model, const DesignSpace& space,
              const plan::SearchEngine& inner, plan::Budget inner_budget,
              const serve::MappingCache* cache, util::WorkerPool& pool);

  /// Prices every not-yet-memoised spec among `indices` (points() index)
  /// and returns one outcome pointer per input index, in input order.
  /// Pointers stay valid for the pricer's lifetime. Duplicate indices
  /// (and distinct indices sharing a spec) price once.
  std::vector<const PointOutcome*> price(const std::vector<int>& indices);

  /// Outcomes in first-priced order (the publish order).
  [[nodiscard]] const std::vector<const PointOutcome*>& priced() const {
    return order_;
  }
  /// Distinct points priced so far — the explore budget unit.
  [[nodiscard]] long long priced_count() const {
    return static_cast<long long>(order_.size());
  }
  [[nodiscard]] long long cache_hits() const { return cache_hits_; }

 private:
  [[nodiscard]] PointOutcome price_one(const HardwarePoint& point) const;

  std::string model_;
  const DesignSpace* space_;
  const plan::SearchEngine* inner_;
  plan::Budget inner_budget_;
  const serve::MappingCache* cache_;
  util::WorkerPool* pool_;
  std::unordered_map<std::string, PointOutcome> memo_;  // by point spec
  std::vector<const PointOutcome*> order_;
  long long cache_hits_ = 0;
};

}  // namespace mars::explore
