// The hardware side of the co-search: an enumerable design space.
//
// MARS everywhere else treats the topology and the design registry as
// fixed inputs; explore promotes them to search dimensions. A
// DesignSpace is a cartesian grid over four axes —
//   * interconnect family (clique / ring / grouped2),
//   * accelerator count,
//   * direct-link bandwidth tier (Gb/s),
//   * design menu (a subset of the Table II registry an adaptive system
//     may configure) —
// plus a fixed prefix of *preset* points (the paper's F1 platform and
// the Table IV cloud clique, both with the full menu) that seed every
// search, so a front can never lose to the fixed fleets the rest of the
// repo benchmarks against. Enumeration order, spec strings and built
// artifacts are all pure functions of the parsed spec — the determinism
// contract (docs/EXPLORE.md) starts here.
//
// Grammar (docs/EXPLORE.md):
//   families=clique,ring;accs=2,4,8;bw=2,8,16;menus=full,solo
// Every axis is optional and defaults to the default_space() value;
// `menus` accepts the named sets full (all three designs), solo (one
// variant per single design), pairs (one per two-design subset), or an
// explicit '+'-joined design-name list. Errors follow the PR 3 named-
// value convention ("families must be ..., got '...'").
#pragma once

#include <array>
#include <string>
#include <vector>

#include "mars/accel/registry.h"
#include "mars/topology/topology.h"

namespace mars::explore {

/// One hardware candidate, hashable/printable via spec().
struct HardwarePoint {
  std::string family;  // "f1" | "clique" | "ring" | "grouped2"
  int accelerators = 0;
  double link_gbps = 0.0;             // direct-link tier (f1: intra-group)
  std::vector<std::string> menu;      // design names, registry order
  bool preset = false;                // fixed-fleet seed point

  /// Canonical identity, e.g. "clique:4@8/SuperLIP+WinogradF43".
  [[nodiscard]] std::string spec() const;
};

/// Owning topology + registry for one point (Problem-compatible
/// lifetimes: keep the BuiltPoint alive for the duration of the search).
struct BuiltPoint {
  topology::Topology topo;
  accel::DesignRegistry designs;

  BuiltPoint() : topo("unbuilt") {}
};

class DesignSpace {
 public:
  /// Parses the grammar above. Throws InvalidArgument naming the axis
  /// and offending value on any malformed input.
  [[nodiscard]] static DesignSpace parse(const std::string& text);

  /// families=clique,ring,grouped2;accs=2,4,8;bw=2,8,16;menus=full,solo
  [[nodiscard]] static DesignSpace default_space();

  /// The canonical spec (round-trips through parse()).
  [[nodiscard]] const std::string& spec() const { return spec_; }

  /// Deterministic enumeration: the presets first, then the cartesian
  /// grid in (family, accs, bw, menu) row-major order.
  [[nodiscard]] const std::vector<HardwarePoint>& points() const { return points_; }
  [[nodiscard]] int num_presets() const { return num_presets_; }

  /// Cartesian axis sizes (family, accs, bw, menu) — the NSGA genome.
  [[nodiscard]] std::array<int, 4> dims() const;
  /// points() index of the cartesian point at `coords`.
  [[nodiscard]] int index_of(const std::array<int, 4>& coords) const;
  /// Inverse of index_of for cartesian points (index >= num_presets()).
  [[nodiscard]] std::array<int, 4> coords_of(int index) const;

  /// Instantiates the topology + design-menu registry for one point.
  [[nodiscard]] BuiltPoint build(const HardwarePoint& point) const;

 private:
  DesignSpace() = default;

  std::string spec_;
  std::vector<std::string> families_;
  std::vector<int> accs_;
  std::vector<double> bw_gbps_;
  std::vector<std::vector<std::string>> menus_;
  std::vector<HardwarePoint> points_;
  int num_presets_ = 0;
};

}  // namespace mars::explore
