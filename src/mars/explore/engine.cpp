#include "mars/explore/engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "mars/plan/engines.h"
#include "mars/serve/service.h"
#include "mars/util/error.h"
#include "mars/util/json.h"
#include "mars/util/rng.h"
#include "mars/util/strings.h"
#include "mars/util/worker_pool.h"

namespace mars::explore {
namespace {

/// Deterministic short float rendering for exports ("%.9g": enough to
/// order points, stable across platforms/libcs we build on).
std::string format_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

/// Fast non-dominated sorting (O(n^2) peeling — archives are small).
/// Returns the rank of each point (0 = the Pareto front).
std::vector<int> nondominated_ranks(const std::vector<FrontPoint>& points) {
  const std::size_t n = points.size();
  std::vector<int> rank(n, -1);
  int level = 0;
  std::size_t assigned = 0;
  std::vector<std::size_t> current;
  while (assigned < n) {
    current.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (rank[i] >= 0) continue;
      bool dominated = false;
      for (std::size_t j = 0; j < n && !dominated; ++j) {
        dominated = j != i && rank[j] < 0 && dominates(points[j], points[i]);
      }
      if (!dominated) current.push_back(i);
    }
    for (const std::size_t i : current) rank[i] = level;  // assign after the sweep
    assigned += current.size();
    ++level;
  }
  return rank;
}

}  // namespace

ExploreEngine::ExploreEngine(ExploreConfig config) : config_(std::move(config)) {
  MARS_CHECK_ARG(!config_.model.empty(), "explore config needs a model");
  MARS_CHECK_ARG(!config_.objectives.empty(),
                 "explore config needs at least one objective");
  MARS_CHECK_ARG(config_.population >= 2, "explore population must be >= 2, got "
                                              << config_.population);
  MARS_CHECK_ARG(config_.generations >= 1,
                 "explore generations must be >= 1, got " << config_.generations);
  MARS_CHECK_ARG(config_.mutation_rate >= 0.0 && config_.mutation_rate <= 1.0,
                 "explore mutation rate must be in [0, 1], got "
                     << config_.mutation_rate);
  MARS_CHECK_ARG(config_.front_size >= 0,
                 "explore front size must be >= 0, got " << config_.front_size);
  MARS_CHECK_ARG(config_.threads >= 1,
                 "explore threads must be >= 1, got " << config_.threads);
  // Inner searches run single-threaded — explore parallelises across
  // points, and nested pools would oversubscribe nondeterministically in
  // wall-clock (results would still be byte-identical, just slower).
  config_.tuning.threads = 1;
  // Fails fast on an unknown mapper name.
  (void)plan::make_engine(config_.mapper, config_.tuning);
}

std::string ExploreEngine::spec_string() const {
  const std::unique_ptr<plan::SearchEngine> inner =
      plan::make_engine(config_.mapper, config_.tuning);
  const plan::Budget inner_budget =
      config_.search_evaluations > 0
          ? plan::Budget::evaluations(config_.search_evaluations)
          : plan::Budget{};
  std::ostringstream os;
  os << "explore:model=" << config_.model << ";space=" << config_.space.spec()
     << ";obj=" << objectives_spec(config_.objectives)
     << ";inner=" << serve::search_spec(*inner, inner_budget, 0)
     << ";pop=" << config_.population << ";gens=" << config_.generations
     << ";mut=" << format_double(config_.mutation_rate, 6)
     << ";seed=" << config_.seed << ";front=" << config_.front_size;
  return os.str();
}

ExploreResult ExploreEngine::search(const serve::MappingCache* cache,
                                    const plan::Budget& budget,
                                    const plan::ProgressFn& progress) const {
  const DesignSpace& space = config_.space;
  const std::array<int, 4> dims = space.dims();

  const std::unique_ptr<plan::SearchEngine> inner =
      plan::make_engine(config_.mapper, config_.tuning);
  const plan::Budget inner_budget =
      config_.search_evaluations > 0
          ? plan::Budget::evaluations(config_.search_evaluations)
          : plan::Budget{};
  util::WorkerPool pool(config_.threads);
  PointPricer pricer(config_.model, space, *inner, inner_budget, cache, pool);
  plan::BudgetMeter meter(budget);
  Rng rng(config_.seed);

  const auto random_coords = [&] {
    std::array<int, 4> coords;
    for (int axis = 0; axis < 4; ++axis) {
      coords[axis] =
          static_cast<int>(rng.index(static_cast<std::size_t>(dims[axis])));
    }
    return coords;
  };

  // The engine-side archive: one entry per distinct priced spec, in
  // publish order — (points() index, outcome). Parent selection and the
  // final front both walk this list.
  std::vector<std::pair<int, const PointOutcome*>> archive;
  std::vector<FrontPoint> archive_points;
  const auto publish = [&](const std::vector<int>& cohort) {
    const std::vector<const PointOutcome*> priced = pricer.price(cohort);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      const bool seen = std::any_of(
          archive.begin(), archive.end(),
          [&](const auto& entry) { return entry.second == priced[i]; });
      if (!seen) {
        archive.emplace_back(cohort[i], priced[i]);
        archive_points.push_back(priced[i]->front_point(config_.objectives));
      }
    }
  };

  // Hypervolume reference: fixed after generation 0 (1.1x the worst seen
  // per objective), so the history is comparable across generations.
  std::vector<double> hv_ref;
  const auto record_history = [&](std::vector<double>& history) {
    const std::size_t arity = config_.objectives.size();
    if (arity == 2 || arity == 3) {
      if (hv_ref.empty()) {
        hv_ref.assign(arity, 0.0);
        for (std::size_t m = 0; m < arity; ++m) {
          double worst = 0.0;
          for (const FrontPoint& p : archive_points) {
            worst = std::max(worst, p.objectives[m]);
          }
          hv_ref[m] = worst * 1.1;
        }
      }
      history.push_back(hypervolume(archive_points, hv_ref));
    } else {
      double best = std::numeric_limits<double>::infinity();
      for (const FrontPoint& p : archive_points) {
        best = std::min(best, p.objectives[0]);
      }
      history.push_back(best);
    }
  };
  const auto report_progress = [&] {
    if (!progress) return;
    plan::Progress p;
    p.evaluations = pricer.priced_count();
    p.best_fitness = std::numeric_limits<double>::infinity();
    for (const auto& [index, outcome] : archive) {
      p.best_fitness = std::min(p.best_fitness, outcome->makespan_s);
    }
    p.elapsed = meter.elapsed();
    progress(p);
  };

  ExploreResult result{Front(static_cast<int>(config_.objectives.size())),
                       {}, {}, 0, {}};

  // Generation 0: every preset (the never-lose seeds, priced before the
  // budget is polled — same contract as the plan engines' seed points)
  // plus a random cohort.
  std::vector<int> cohort;
  for (int i = 0; i < space.num_presets(); ++i) cohort.push_back(i);
  for (int i = 0; i < config_.population; ++i) {
    cohort.push_back(space.index_of(random_coords()));
  }
  publish(cohort);
  record_history(result.history);
  report_progress();

  // Binary tournament on (non-domination rank asc, crowding desc,
  // publish order asc). Ranks/crowding are recomputed per generation
  // over the whole archive.
  int generations_run = 0;
  while (generations_run < config_.generations &&
         !meter.exhausted(pricer.priced_count())) {
    const std::vector<int> ranks = nondominated_ranks(archive_points);
    const std::vector<double> crowd = Front::crowding(archive_points);
    const auto tournament = [&] {
      const std::size_t a = rng.index(archive.size());
      const std::size_t b = rng.index(archive.size());
      if (ranks[a] != ranks[b]) return ranks[a] < ranks[b] ? a : b;
      if (crowd[a] != crowd[b]) return crowd[a] > crowd[b] ? a : b;
      return std::min(a, b);
    };
    const auto parent_coords = [&](std::size_t entry) {
      const int index = archive[entry].first;
      // Presets sit outside the cartesian grid; their offspring inherit
      // fresh random genes (drawn serially, deterministic).
      if (index < space.num_presets()) return random_coords();
      return space.coords_of(index);
    };

    cohort.clear();
    for (int child = 0; child < config_.population; ++child) {
      const std::array<int, 4> pa = parent_coords(tournament());
      const std::array<int, 4> pb = parent_coords(tournament());
      std::array<int, 4> genes;
      for (int axis = 0; axis < 4; ++axis) {
        genes[axis] = rng.chance(0.5) ? pa[axis] : pb[axis];
      }
      for (int axis = 0; axis < 4; ++axis) {
        if (rng.chance(config_.mutation_rate)) {
          genes[axis] =
              static_cast<int>(rng.index(static_cast<std::size_t>(dims[axis])));
        }
      }
      cohort.push_back(space.index_of(genes));
    }
    publish(cohort);
    ++generations_run;
    record_history(result.history);
    report_progress();
  }

  for (const FrontPoint& point : archive_points) {
    (void)result.front.insert(point);
  }
  for (const auto& [index, outcome] : archive) {
    result.outcomes.push_back(*outcome);
  }
  result.cache_hits = pricer.cache_hits();
  result.provenance.engine = "explore";
  result.provenance.spec = spec_string();
  result.provenance.evaluations = pricer.priced_count();
  result.provenance.iterations = generations_run;
  result.provenance.elapsed = meter.elapsed();
  result.provenance.stopped = meter.reason();
  return result;
}

namespace {

const PointOutcome* outcome_for(const ExploreResult& result,
                                const std::string& key) {
  for (const PointOutcome& outcome : result.outcomes) {
    if (outcome.point.spec() == key) return &outcome;
  }
  MARS_CHECK_ARG(false, "front point '" << key << "' has no priced outcome");
  return nullptr;
}

}  // namespace

std::string front_csv(const ExploreResult& result, const ExploreConfig& config) {
  std::ostringstream os;
  os << "point,family,accelerators,link_gbps,menu,makespan_ms,energy_mj,cost,"
        "sets,mapping,engine\n";
  for (const FrontPoint& fp : result.front.top(config.front_size)) {
    const PointOutcome& out = *outcome_for(result, fp.key);
    os << fp.key << ',' << out.point.family << ',' << out.point.accelerators
       << ',' << format_value(out.point.link_gbps) << ','
       << join(out.point.menu, "+") << ','
       << format_value(out.makespan_s * 1e3) << ','
       << format_value(out.energy_j * 1e3) << ',' << format_value(out.cost)
       << ',' << out.sets << ',' << out.mapping_digest << ',' << out.engine
       << '\n';
  }
  return os.str();
}

std::string front_json(const ExploreResult& result, const ExploreConfig& config) {
  JsonValue objectives = JsonValue::array();
  for (const Objective objective : config.objectives) {
    objectives.push(JsonValue::string(to_string(objective)));
  }
  JsonValue front = JsonValue::array();
  for (const FrontPoint& fp : result.front.top(config.front_size)) {
    const PointOutcome& out = *outcome_for(result, fp.key);
    JsonValue menu = JsonValue::array();
    for (const std::string& name : out.point.menu) {
      menu.push(JsonValue::string(name));
    }
    front.push(JsonValue::object()
                        .set("point", JsonValue::string(fp.key))
                        .set("family", JsonValue::string(out.point.family))
                        .set("accelerators",
                             JsonValue::integer(out.point.accelerators))
                        .set("link_gbps", JsonValue::number(out.point.link_gbps))
                        .set("menu", std::move(menu))
                        .set("makespan_ms",
                             JsonValue::number(out.makespan_s * 1e3))
                        .set("energy_mj", JsonValue::number(out.energy_j * 1e3))
                        .set("cost", JsonValue::number(out.cost))
                        .set("sets", JsonValue::integer(out.sets))
                        .set("mapping", JsonValue::string(out.mapping_digest))
                        .set("engine", JsonValue::string(out.engine)));
  }
  return JsonValue::object()
      .set("model", JsonValue::string(config.model))
      .set("space", JsonValue::string(config.space.spec()))
      .set("objectives", std::move(objectives))
      .set("front", std::move(front))
      .dump();
}

}  // namespace mars::explore
