// Pareto front archive: the vector-valued answer of the hardware search.
//
// A Front is an unbounded archive of mutually non-dominated points under
// strict Pareto dominance (all objectives minimised). Keeping the archive
// unbounded is what makes it a pure function of the *set* of inserted
// points: the maximal elements of a partial order do not depend on
// insertion order, so fronts are byte-identical under input permutation —
// the property tests/explore/test_front_properties.cpp fuzzes. Capacity
// is applied only at read time (top(n), NSGA-II crowding-distance
// truncation), never during insertion, because an online capacity cap
// would re-introduce order dependence.
#pragma once

#include <string>
#include <vector>

namespace mars::explore {

/// One candidate: a stable identity plus its objective vector (all
/// objectives are costs — smaller is better).
struct FrontPoint {
  std::string key;
  std::vector<double> objectives;
};

/// Strict Pareto dominance: a is no worse everywhere and better
/// somewhere. Equal vectors do not dominate each other.
[[nodiscard]] bool dominates(const FrontPoint& a, const FrontPoint& b);

class Front {
 public:
  /// `arity` is the fixed objective-vector length every point must have.
  explicit Front(int arity);

  /// Offers `point` to the archive. Returns false (archive unchanged)
  /// when an existing member dominates it; otherwise evicts every member
  /// it dominates and keeps it. A true return is not a permanence
  /// guarantee — a later insert may evict the point again.
  bool insert(FrontPoint point);

  [[nodiscard]] int arity() const { return arity_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// The front in canonical order: objectives lexicographically, key as
  /// the tie-break. Independent of insertion order.
  [[nodiscard]] std::vector<FrontPoint> points() const;

  /// NSGA-II-style truncation to at most `n` points (n <= 0: all):
  /// iteratively removes the lowest-crowding point (boundary points have
  /// infinite crowding and survive), breaking ties towards keeping the
  /// canonically-earlier point. Deterministic, read-only.
  [[nodiscard]] std::vector<FrontPoint> top(int n) const;

  /// Crowding distance of each of `points` (NSGA-II): per-objective
  /// normalised gap between each point's sorted neighbours; objective
  /// extremes get infinity.
  [[nodiscard]] static std::vector<double> crowding(
      const std::vector<FrontPoint>& points);

 private:
  int arity_;
  std::vector<FrontPoint> points_;  // mutually non-dominated, unordered
};

/// Exact hypervolume dominated by `points` relative to reference `ref`
/// (all objectives minimised; a point contributes the box between itself
/// and ref, clipped at ref). Supports 2 and 3 objectives — the arities
/// the explore objectives produce. Points outside the reference box
/// contribute nothing.
[[nodiscard]] double hypervolume(const std::vector<FrontPoint>& points,
                                 const std::vector<double>& ref);

}  // namespace mars::explore
