#include "mars/explore/objective.h"

#include <algorithm>
#include <cstdio>

#include "mars/core/evaluator.h"
#include "mars/plan/planner.h"
#include "mars/serve/service.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"
#include "mars/util/strings.h"

namespace mars::explore {
namespace {

constexpr Objective kAllObjectives[] = {Objective::kMakespan, Objective::kEnergy,
                                        Objective::kCost};

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace

std::string to_string(Objective objective) {
  switch (objective) {
    case Objective::kMakespan:
      return "makespan";
    case Objective::kEnergy:
      return "energy";
    case Objective::kCost:
      return "cost";
  }
  return "?";
}

std::vector<Objective> parse_objectives(const std::string& text) {
  MARS_CHECK_ARG(!text.empty(), "objectives list is empty");
  std::vector<Objective> out;
  for (const std::string& name : split(text, ',')) {
    bool known = false;
    for (const Objective objective : kAllObjectives) {
      if (name == to_string(objective)) {
        MARS_CHECK_ARG(std::find(out.begin(), out.end(), objective) == out.end(),
                       "objectives list names '" << name << "' twice");
        out.push_back(objective);
        known = true;
      }
    }
    MARS_CHECK_ARG(known, "objectives must be a comma-separated subset of "
                          "makespan, energy, cost, got '"
                              << name << "'");
  }
  MARS_CHECK_ARG(!out.empty(), "objectives list is empty");
  return out;
}

std::string objectives_spec(const std::vector<Objective>& objectives) {
  std::vector<std::string> names;
  names.reserve(objectives.size());
  for (const Objective objective : objectives) names.push_back(to_string(objective));
  return join(names, "+");
}

double hardware_cost(const BuiltPoint& built) {
  double cost = 0.0;
  double worst_area = 0.0;
  for (const accel::DesignId id : built.designs.ids()) {
    worst_area = std::max(worst_area, built.designs.design(id).area_cost());
  }
  cost += static_cast<double>(built.topo.size()) * (kCardBaseCost + worst_area);
  for (topology::AccId a = 0; a < built.topo.size(); ++a) {
    for (topology::AccId b = a + 1; b < built.topo.size(); ++b) {
      cost += kLinkCostPerGbps * built.topo.link(a, b).gbps();
    }
  }
  return cost;
}

double PointOutcome::objective(Objective objective) const {
  switch (objective) {
    case Objective::kMakespan:
      return makespan_s;
    case Objective::kEnergy:
      return energy_j;
    case Objective::kCost:
      return cost;
  }
  return 0.0;
}

FrontPoint PointOutcome::front_point(
    const std::vector<Objective>& objectives) const {
  FrontPoint fp;
  fp.key = point.spec();
  fp.objectives.reserve(objectives.size());
  for (const Objective o : objectives) fp.objectives.push_back(objective(o));
  return fp;
}

PointPricer::PointPricer(std::string model, const DesignSpace& space,
                         const plan::SearchEngine& inner,
                         plan::Budget inner_budget,
                         const serve::MappingCache* cache,
                         util::WorkerPool& pool)
    : model_(std::move(model)),
      space_(&space),
      inner_(&inner),
      inner_budget_(inner_budget),
      cache_(cache),
      pool_(&pool) {
  MARS_CHECK_ARG(inner.searches(),
                 "PointPricer needs a searching inner engine, got '"
                     << inner.name() << "'");
}

PointOutcome PointPricer::price_one(const HardwarePoint& point) const {
  const BuiltPoint built = space_->build(point);
  const plan::Planner planner =
      plan::Planner::for_model(model_, built.topo, built.designs,
                               /*adaptive=*/true);
  PointOutcome out;
  out.point = point;
  out.cost = hardware_cost(built);
  out.engine = inner_->name();
  out.search_spec = serve::search_spec(*inner_, inner_budget_, 0);

  const serve::MappingCache::Key key{
      model_, serve::MappingCache::fingerprint(built.topo, built.designs,
                                               /*adaptive=*/true,
                                               out.search_spec)};
  core::Mapping mapping;
  core::EvaluationSummary summary;
  bool have_mapping = false;
  if (cache_ != nullptr) {
    if (std::optional<core::Mapping> cached = cache_->load(
            key, planner.spine(), built.topo, built.designs, /*adaptive=*/true)) {
      mapping = *std::move(cached);
      // Same evaluation the search path runs (plan engines finish with
      // MappingEvaluator::evaluate), so warm outcomes are bit-identical
      // to cold ones.
      summary = core::MappingEvaluator(planner.problem()).evaluate(mapping);
      out.from_cache = true;
      have_mapping = true;
    }
  }
  if (!have_mapping) {
    plan::PlanResult result = planner.plan(*inner_, inner_budget_);
    mapping = std::move(result.mapping);
    summary = result.summary;
    out.evaluations = result.provenance.evaluations;
    const bool storable =
        result.provenance.stopped != plan::StopReason::kCancelled;
    if (cache_ != nullptr && storable) {
      try {
        cache_->store(key, mapping, planner.spine(), built.designs,
                      /*adaptive=*/true);
      } catch (const std::exception& e) {
        MARS_WARN << "explore: cache store failed for point '" << point.spec()
                  << "' (search result kept): " << e.what();
      }
    }
  }

  out.makespan_s = summary.analytic_makespan.count();
  out.energy_j = summary.energy.count();
  out.sets = static_cast<int>(mapping.sets.size());
  out.memory_ok = summary.memory_ok;
  out.mapping_digest = fnv1a_hex(
      core::describe(mapping, planner.spine(), built.designs, /*adaptive=*/true));
  return out;
}

std::vector<const PointOutcome*> PointPricer::price(
    const std::vector<int>& indices) {
  // Serial dedupe sweep: the first appearance of an unmemoised spec is
  // the miss that gets priced; duplicates (including distinct indices
  // sharing a spec, e.g. a preset mirrored in the grid) ride along.
  std::vector<std::string> specs;
  specs.reserve(indices.size());
  std::vector<const HardwarePoint*> missing;
  std::vector<std::string> missing_specs;
  for (const int index : indices) {
    MARS_CHECK_ARG(index >= 0 &&
                       index < static_cast<int>(space_->points().size()),
                   "point index " << index << " out of range");
    const HardwarePoint& point =
        space_->points()[static_cast<std::size_t>(index)];
    std::string spec = point.spec();
    if (memo_.find(spec) == memo_.end() &&
        std::find(missing_specs.begin(), missing_specs.end(), spec) ==
            missing_specs.end()) {
      missing.push_back(&point);
      missing_specs.push_back(spec);
    }
    specs.push_back(std::move(spec));
  }

  // Parallel price of the distinct misses, results written by index.
  std::vector<PointOutcome> outcomes(missing.size());
  pool_->parallel_for(missing.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      outcomes[i] = price_one(*missing[i]);
    }
  });

  // Serial publish in first-seen order.
  for (std::size_t i = 0; i < missing.size(); ++i) {
    if (outcomes[i].from_cache) ++cache_hits_;
    const auto [it, inserted] =
        memo_.emplace(missing_specs[i], std::move(outcomes[i]));
    order_.push_back(&it->second);
  }

  std::vector<const PointOutcome*> result;
  result.reserve(specs.size());
  for (const std::string& spec : specs) result.push_back(&memo_.at(spec));
  return result;
}

}  // namespace mars::explore
