#include "mars/sim/executor.h"

#include <algorithm>

#include "mars/sim/event_queue.h"
#include "mars/util/error.h"

namespace mars::sim {
namespace {

struct Event {
  enum class Kind : std::uint8_t { kTryStart, kLegDone, kTaskDone } kind;
  TaskId task = -1;
  int leg = 0;
};

}  // namespace

Executor::Executor(const topology::Topology& topo, SimParams params)
    : topo_(&topo), network_(topo, params) {}

ExecutionResult Executor::run(const TaskGraph& graph) const {
  const int n = graph.size();
  ExecutionResult result;
  result.timings.assign(static_cast<std::size_t>(n), TaskTiming{});
  result.acc_busy.assign(static_cast<std::size_t>(topo_->size()), Seconds(0.0));

  std::vector<int> missing_deps(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<TaskId>> dependents(static_cast<std::size_t>(n));
  for (const Task& task : graph.tasks()) {
    missing_deps[static_cast<std::size_t>(task.id)] =
        static_cast<int>(task.deps.size());
    for (TaskId dep : task.deps) {
      dependents[static_cast<std::size_t>(dep)].push_back(task.id);
    }
  }

  // Resource availability.
  std::vector<Seconds> acc_free(static_cast<std::size_t>(topo_->size()),
                                Seconds(0.0));
  std::vector<Seconds> channel_free(
      static_cast<std::size_t>(network_.num_channels()), Seconds(0.0));
  // Route cache per transfer task.
  std::vector<std::vector<RouteLeg>> routes(static_cast<std::size_t>(n));

  EventQueue<Event> queue;
  int completed = 0;

  auto finish_task = [&](TaskId id, Seconds now) {
    result.timings[static_cast<std::size_t>(id)].end = now;
    result.timings[static_cast<std::size_t>(id)].executed = true;
    result.makespan = std::max(result.makespan, now);
    ++completed;
    for (TaskId dependent : dependents[static_cast<std::size_t>(id)]) {
      if (--missing_deps[static_cast<std::size_t>(dependent)] == 0) {
        queue.push(now, Event{Event::Kind::kTryStart, dependent, 0});
      }
    }
  };

  for (const Task& task : graph.tasks()) {
    if (task.deps.empty()) {
      queue.push(Seconds(0.0), Event{Event::Kind::kTryStart, task.id, 0});
    }
  }

  while (!queue.empty()) {
    Seconds now;
    const Event event = queue.pop(now);
    const Task& task = graph.task(event.task);
    TaskTiming& timing = result.timings[static_cast<std::size_t>(event.task)];

    switch (event.kind) {
      case Event::Kind::kTryStart: {
        if (event.leg == 0) timing.start = now;
        switch (task.kind) {
          case TaskKind::kBarrier:
            finish_task(task.id, now);
            break;
          case TaskKind::kCompute: {
            Seconds& free = acc_free[static_cast<std::size_t>(task.acc)];
            if (free > now) {
              queue.push(free, Event{Event::Kind::kTryStart, task.id, 0});
              break;
            }
            timing.start = now;
            const Seconds end = now + task.duration;
            free = end;
            result.acc_busy[static_cast<std::size_t>(task.acc)] += task.duration;
            queue.push(end, Event{Event::Kind::kTaskDone, task.id, 0});
            break;
          }
          case TaskKind::kTransfer: {
            if (task.bytes.count() <= 0.0) {
              finish_task(task.id, now);
              break;
            }
            auto& route = routes[static_cast<std::size_t>(task.id)];
            if (route.empty()) route = network_.route(task.src, task.dst);
            MARS_CHECK(event.leg < static_cast<int>(route.size()),
                       "leg index out of range");
            const RouteLeg& leg = route[static_cast<std::size_t>(event.leg)];
            Seconds& free = channel_free[static_cast<std::size_t>(leg.channel)];
            if (free > now) {
              queue.push(free, Event{Event::Kind::kTryStart, task.id, event.leg});
              break;
            }
            if (event.leg == 0) timing.start = now;
            const Seconds end = now + network_.leg_time(leg, task.bytes);
            free = end;
            queue.push(end, Event{Event::Kind::kLegDone, task.id, event.leg});
            break;
          }
        }
        break;
      }
      case Event::Kind::kLegDone: {
        const auto& route = routes[static_cast<std::size_t>(event.task)];
        if (event.leg + 1 < static_cast<int>(route.size())) {
          // Store-and-forward at the host before the next leg.
          queue.push(now + network_.params().host_latency,
                     Event{Event::Kind::kTryStart, task.id, event.leg + 1});
        } else {
          finish_task(task.id, now);
        }
        break;
      }
      case Event::Kind::kTaskDone:
        finish_task(event.task, now);
        break;
    }
  }

  MARS_CHECK(completed == n, "deadlock: " << (n - completed)
                                          << " tasks never became ready "
                                             "(dependency cycle?)");
  return result;
}

}  // namespace mars::sim
