// Deterministic discrete-event queue.
//
// Events at equal timestamps pop in insertion order (stable sequence
// numbers) so simulations are bit-reproducible across runs and platforms.
//
// The heap lives in a plain vector (std::push_heap / std::pop_heap rather
// than std::priority_queue) so callers that know the event volume up front
// can reserve() it — the serving engine pre-sizes the queue to the arrival
// stream, which pins its steady-state heap allocations at zero. Pop order
// is a pure function of the (time, seq) total order, not of the heap's
// internal layout, so the swap changes no observable behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mars/util/units.h"

namespace mars::sim {

template <typename Payload>
class EventQueue {
 public:
  void push(Seconds time, Payload payload) {
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Seconds next_time() const { return heap_.front().time; }

  /// Pre-sizes the underlying storage for `events` concurrent entries.
  void reserve(std::size_t events) { heap_.reserve(events); }

  Payload pop(Seconds& time_out) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry top = std::move(heap_.back());
    heap_.pop_back();
    time_out = top.time;
    return std::move(top.payload);
  }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    Payload payload;
  };

  /// Min-heap order: the entry that fires later sorts toward the bottom.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mars::sim
