// Deterministic discrete-event queue.
//
// Events at equal timestamps pop in insertion order (stable sequence
// numbers) so simulations are bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "mars/util/units.h"

namespace mars::sim {

template <typename Payload>
class EventQueue {
 public:
  void push(Seconds time, Payload payload) {
    heap_.push(Entry{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Seconds next_time() const { return heap_.top().time; }

  Payload pop(Seconds& time_out) {
    Entry top = heap_.top();
    heap_.pop();
    time_out = top.time;
    return std::move(top.payload);
  }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    Payload payload;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mars::sim
