// EventQueue is header-only (template); this translation unit exists to
// anchor the module and instantiate the common payload for faster builds.
#include "mars/sim/event_queue.h"

namespace mars::sim {

template class EventQueue<int>;

}  // namespace mars::sim
