// Collective-communication schedule builders (the ASTRA-Sim role).
//
// Each builder appends the transfer tasks of a ring-based collective to a
// TaskGraph and returns one sink task per member (the moment that member
// holds its final data). Ring order follows the member list; the caller
// chooses an order that matches the physical topology.
#pragma once

#include <vector>

#include "mars/sim/task_graph.h"

namespace mars::sim {

/// Ring All-Reduce of `payload` across `members`: reduce-scatter then
/// all-gather, 2*(r-1) steps of r concurrent neighbour chunks (payload/r
/// each). Returns the per-member completion tasks.
std::vector<TaskId> ring_allreduce(TaskGraph& graph,
                                   const std::vector<int>& members,
                                   Bytes payload, std::vector<TaskId> deps,
                                   const std::string& label);

/// Ring All-Gather: r-1 steps; each member ends with all r shards of size
/// `shard` (it starts holding one).
std::vector<TaskId> ring_allgather(TaskGraph& graph,
                                   const std::vector<int>& members, Bytes shard,
                                   std::vector<TaskId> deps,
                                   const std::string& label);

/// One ring rotation step: member i sends `shard` to member i+1 (mod r).
/// Used between SS phases. Returns the per-member receive-complete tasks.
std::vector<TaskId> ring_shift(TaskGraph& graph, const std::vector<int>& members,
                               Bytes shard, std::vector<TaskId> deps,
                               const std::string& label);

/// Scatter `total` bytes evenly from `src` to every member (excluding any
/// occurrence of src itself). Returns per-destination completion tasks.
std::vector<TaskId> scatter(TaskGraph& graph, int src,
                            const std::vector<int>& members, Bytes total,
                            std::vector<TaskId> deps, const std::string& label);

}  // namespace mars::sim
