#include "mars/sim/trace.h"

#include <sstream>

#include "mars/util/error.h"

namespace mars::sim {
namespace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

std::string endpoint_name(int endpoint) {
  return endpoint == kHost ? "host" : "acc" + std::to_string(endpoint);
}

}  // namespace

std::string to_chrome_trace(const TaskGraph& graph, const ExecutionResult& result) {
  MARS_CHECK_ARG(result.timings.size() == static_cast<std::size_t>(graph.size()),
                 "result does not match graph");
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Task& task : graph.tasks()) {
    const TaskTiming& timing = result.timings[static_cast<std::size_t>(task.id)];
    if (!timing.executed || task.kind == TaskKind::kBarrier) continue;
    const double us = timing.start.micros();
    const double dur = (timing.end - timing.start).micros();
    std::string tid;
    if (task.kind == TaskKind::kCompute) {
      tid = "acc" + std::to_string(task.acc);
    } else {
      tid = "net " + endpoint_name(task.src) + "->" + endpoint_name(task.dst);
    }
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << escape_json(task.label) << "\",\"ph\":\"X\",\"pid\":0,"
       << "\"tid\":\"" << tid << "\",\"ts\":" << us << ",\"dur\":" << dur << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace mars::sim
