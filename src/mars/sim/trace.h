// Chrome-trace (about://tracing, Perfetto) export of an execution.
#pragma once

#include <string>

#include "mars/sim/executor.h"
#include "mars/sim/task_graph.h"

namespace mars::sim {

/// Serialises an executed task graph as a Chrome trace JSON string.
/// Compute tasks land on per-accelerator rows; transfers on a network row
/// keyed by endpoint pair.
[[nodiscard]] std::string to_chrome_trace(const TaskGraph& graph,
                                          const ExecutionResult& result);

}  // namespace mars::sim
