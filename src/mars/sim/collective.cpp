#include "mars/sim/collective.h"

#include "mars/util/error.h"

namespace mars::sim {
namespace {

// Synchronised ring pass: every member sends `chunk` to its successor;
// step s waits for all of step s-1 (a barrier keeps the schedule compact
// and matches how ASTRA-Sim models ring collectives).
std::vector<TaskId> ring_steps(TaskGraph& graph, const std::vector<int>& members,
                               Bytes chunk, int steps, std::vector<TaskId> deps,
                               const std::string& label) {
  const std::size_t r = members.size();
  std::vector<TaskId> previous = std::move(deps);
  std::vector<TaskId> receives;
  for (int step = 0; step < steps; ++step) {
    receives.clear();
    receives.reserve(r);
    for (std::size_t i = 0; i < r; ++i) {
      const int src = members[i];
      const int dst = members[(i + 1) % r];
      receives.push_back(graph.add_transfer(
          src, dst, chunk, label + "/step" + std::to_string(step), previous));
    }
    previous = receives;
  }
  return previous;
}

}  // namespace

std::vector<TaskId> ring_allreduce(TaskGraph& graph,
                                   const std::vector<int>& members, Bytes payload,
                                   std::vector<TaskId> deps,
                                   const std::string& label) {
  MARS_CHECK_ARG(!members.empty(), "All-Reduce over empty member list");
  const int r = static_cast<int>(members.size());
  if (r == 1 || payload.count() <= 0.0) {
    return {graph.add_barrier(std::move(deps), label + "/noop")};
  }
  const Bytes chunk = payload / static_cast<double>(r);
  return ring_steps(graph, members, chunk, 2 * (r - 1), std::move(deps), label);
}

std::vector<TaskId> ring_allgather(TaskGraph& graph,
                                   const std::vector<int>& members, Bytes shard,
                                   std::vector<TaskId> deps,
                                   const std::string& label) {
  MARS_CHECK_ARG(!members.empty(), "All-Gather over empty member list");
  const int r = static_cast<int>(members.size());
  if (r == 1 || shard.count() <= 0.0) {
    return {graph.add_barrier(std::move(deps), label + "/noop")};
  }
  return ring_steps(graph, members, shard, r - 1, std::move(deps), label);
}

std::vector<TaskId> ring_shift(TaskGraph& graph, const std::vector<int>& members,
                               Bytes shard, std::vector<TaskId> deps,
                               const std::string& label) {
  MARS_CHECK_ARG(members.size() >= 2, "ring shift needs >= 2 members");
  return ring_steps(graph, members, shard, 1, std::move(deps), label);
}

std::vector<TaskId> scatter(TaskGraph& graph, int src,
                            const std::vector<int>& members, Bytes total,
                            std::vector<TaskId> deps, const std::string& label) {
  MARS_CHECK_ARG(!members.empty(), "scatter to empty member list");
  std::vector<TaskId> out;
  std::vector<int> targets;
  for (int member : members) {
    if (member != src) targets.push_back(member);
  }
  if (targets.empty() || total.count() <= 0.0) {
    return {graph.add_barrier(std::move(deps), label + "/noop")};
  }
  const Bytes per_target = total / static_cast<double>(targets.size());
  out.reserve(targets.size());
  for (int target : targets) {
    out.push_back(graph.add_transfer(src, target, per_target,
                                     label + "/to" + std::to_string(target),
                                     deps));
  }
  return out;
}

}  // namespace mars::sim
