#include "mars/sim/network.h"

#include "mars/util/error.h"

namespace mars::sim {

Network::Network(const topology::Topology& topo, SimParams params)
    : topo_(&topo), params_(params) {
  const int n = topo.size();
  direct_.assign(static_cast<std::size_t>(n),
                 std::vector<int>(static_cast<std::size_t>(n), -1));
  int next = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a != b && topo.has_link(a, b)) {
        direct_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = next++;
      }
    }
  }
  host_up_base_ = next;
  next += n;
  host_down_base_ = next;
  next += n;
  num_channels_ = next;
}

int Network::direct_channel(int src, int dst) const {
  return direct_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
}

int Network::host_up_channel(int acc) const { return host_up_base_ + acc; }
int Network::host_down_channel(int acc) const { return host_down_base_ + acc; }

std::vector<RouteLeg> Network::route(int src, int dst) const {
  MARS_CHECK_ARG(src >= kHost && dst >= kHost && src != dst, "bad route endpoints");
  std::vector<RouteLeg> legs;
  if (src == kHost) {
    legs.push_back({host_down_channel(dst), topo_->host_bandwidth(dst)});
    return legs;
  }
  if (dst == kHost) {
    legs.push_back({host_up_channel(src), topo_->host_bandwidth(src)});
    return legs;
  }
  const int channel = direct_channel(src, dst);
  if (channel >= 0) {
    legs.push_back({channel, topo_->link(src, dst)});
    return legs;
  }
  legs.push_back({host_up_channel(src), topo_->host_bandwidth(src)});
  legs.push_back({host_down_channel(dst), topo_->host_bandwidth(dst)});
  return legs;
}

Seconds Network::leg_time(const RouteLeg& leg, Bytes bytes) const {
  return leg.bw.transfer_time(bytes) + params_.link_latency;
}

}  // namespace mars::sim
