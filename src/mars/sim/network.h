// Link-level network model.
//
// Every undirected topology edge becomes two directed channels (full
// duplex); every accelerator gets an up and a down host channel. A channel
// serves one flow at a time at full bandwidth (FIFO) — the contention model
// that makes host-routed traffic congest realistically when several
// accelerator pairs cross groups at once.
#pragma once

#include <vector>

#include "mars/sim/task_graph.h"
#include "mars/topology/topology.h"

namespace mars::sim {

struct SimParams {
  /// Per-leg wire latency (propagation + protocol).
  Seconds link_latency = microseconds(2.0);
  /// Extra store-and-forward delay when a flow is relayed by the host.
  Seconds host_latency = microseconds(5.0);
};

/// One leg of a route: a directed channel plus its bandwidth.
struct RouteLeg {
  int channel = -1;
  Bandwidth bw{};
};

class Network {
 public:
  Network(const topology::Topology& topo, SimParams params);

  /// Channels a src->dst flow traverses in order (1 leg when a direct link
  /// exists or an endpoint is the host, otherwise 2 via the host).
  [[nodiscard]] std::vector<RouteLeg> route(int src, int dst) const;

  [[nodiscard]] int num_channels() const { return num_channels_; }
  [[nodiscard]] const SimParams& params() const { return params_; }

  /// Serialised transfer time of `bytes` over one leg, excluding queueing.
  [[nodiscard]] Seconds leg_time(const RouteLeg& leg, Bytes bytes) const;

 private:
  [[nodiscard]] int direct_channel(int src, int dst) const;  // -1 if none
  [[nodiscard]] int host_up_channel(int acc) const;
  [[nodiscard]] int host_down_channel(int acc) const;

  const topology::Topology* topo_;
  SimParams params_;
  int num_channels_ = 0;
  std::vector<std::vector<int>> direct_;  // [src][dst] channel id or -1
  int host_up_base_ = 0;
  int host_down_base_ = 0;
};

}  // namespace mars::sim
