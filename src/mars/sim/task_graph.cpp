#include "mars/sim/task_graph.h"

#include "mars/util/error.h"

namespace mars::sim {

TaskId TaskGraph::append(Task task) {
  task.id = static_cast<TaskId>(tasks_.size());
  for (TaskId dep : task.deps) {
    MARS_CHECK_ARG(dep >= 0 && dep < task.id,
                   "task '" << task.label << "' depends on undefined task " << dep);
  }
  tasks_.push_back(std::move(task));
  return tasks_.back().id;
}

TaskId TaskGraph::add_compute(int acc, Seconds duration, std::string label,
                              std::vector<TaskId> deps) {
  MARS_CHECK_ARG(acc >= 0, "compute task needs an accelerator");
  MARS_CHECK_ARG(duration.count() >= 0.0, "negative compute duration");
  Task task;
  task.kind = TaskKind::kCompute;
  task.acc = acc;
  task.duration = duration;
  task.label = std::move(label);
  task.deps = std::move(deps);
  return append(std::move(task));
}

TaskId TaskGraph::add_transfer(int src, int dst, Bytes bytes, std::string label,
                               std::vector<TaskId> deps) {
  MARS_CHECK_ARG(src >= kHost && dst >= kHost, "invalid transfer endpoint");
  MARS_CHECK_ARG(src != dst, "transfer to self");
  MARS_CHECK_ARG(bytes.count() >= 0.0, "negative transfer size");
  Task task;
  task.kind = TaskKind::kTransfer;
  task.src = src;
  task.dst = dst;
  task.bytes = bytes;
  task.label = std::move(label);
  task.deps = std::move(deps);
  return append(std::move(task));
}

TaskId TaskGraph::add_barrier(std::vector<TaskId> deps, std::string label) {
  Task task;
  task.kind = TaskKind::kBarrier;
  task.label = std::move(label);
  task.deps = std::move(deps);
  return append(std::move(task));
}

const Task& TaskGraph::task(TaskId id) const {
  MARS_CHECK_ARG(id >= 0 && id < size(), "task id " << id << " out of range");
  return tasks_[static_cast<std::size_t>(id)];
}

}  // namespace mars::sim
