#include "mars/sim/task_graph.h"

#include "mars/util/error.h"

namespace mars::sim {

TaskId TaskGraph::append(Task task) {
  task.id = static_cast<TaskId>(tasks_.size());
  for (TaskId dep : task.deps) {
    MARS_CHECK_ARG(dep >= 0 && dep < task.id,
                   "task '" << task.label << "' depends on undefined task " << dep);
  }
  tasks_.push_back(std::move(task));
  return tasks_.back().id;
}

TaskId TaskGraph::add_compute(int acc, Seconds duration, std::string label,
                              std::vector<TaskId> deps) {
  MARS_CHECK_ARG(acc >= 0, "compute task needs an accelerator");
  MARS_CHECK_ARG(duration.count() >= 0.0, "negative compute duration");
  Task task;
  task.kind = TaskKind::kCompute;
  task.acc = acc;
  task.duration = duration;
  task.label = std::move(label);
  task.deps = std::move(deps);
  return append(std::move(task));
}

TaskId TaskGraph::add_transfer(int src, int dst, Bytes bytes, std::string label,
                               std::vector<TaskId> deps) {
  MARS_CHECK_ARG(src >= kHost && dst >= kHost, "invalid transfer endpoint");
  MARS_CHECK_ARG(src != dst, "transfer to self");
  MARS_CHECK_ARG(bytes.count() >= 0.0, "negative transfer size");
  Task task;
  task.kind = TaskKind::kTransfer;
  task.src = src;
  task.dst = dst;
  task.bytes = bytes;
  task.label = std::move(label);
  task.deps = std::move(deps);
  return append(std::move(task));
}

TaskId TaskGraph::add_barrier(std::vector<TaskId> deps, std::string label) {
  Task task;
  task.kind = TaskKind::kBarrier;
  task.label = std::move(label);
  task.deps = std::move(deps);
  return append(std::move(task));
}

const Task& TaskGraph::task(TaskId id) const {
  MARS_CHECK_ARG(id >= 0 && id < size(), "task id " << id << " out of range");
  return tasks_[static_cast<std::size_t>(id)];
}

FlatTaskGraph FlatTaskGraph::from(const TaskGraph& graph) {
  FlatTaskGraph flat;
  flat.size = graph.size();
  const auto n = static_cast<std::size_t>(flat.size);
  flat.kinds.reserve(n);
  flat.accs.reserve(n);
  flat.durations.reserve(n);
  flat.srcs.reserve(n);
  flat.dsts.reserve(n);
  flat.bytes.reserve(n);
  flat.dep_counts.reserve(n);

  std::size_t total_deps = 0;
  for (const Task& task : graph.tasks()) {
    flat.kinds.push_back(task.kind);
    flat.accs.push_back(task.acc);
    flat.durations.push_back(task.duration);
    flat.srcs.push_back(task.src);
    flat.dsts.push_back(task.dst);
    flat.bytes.push_back(task.bytes);
    flat.dep_counts.push_back(static_cast<int>(task.deps.size()));
    total_deps += task.deps.size();
    if (task.deps.empty()) flat.roots.push_back(task.id);
  }

  // CSR dependents: count, prefix-sum, fill. Iterating tasks in id order
  // and each task's deps in declaration order reproduces the adjacency
  // order an incremental per-clone build produces.
  std::vector<int> counts(n, 0);
  for (const Task& task : graph.tasks()) {
    for (TaskId dep : task.deps) ++counts[static_cast<std::size_t>(dep)];
  }
  flat.dependent_offsets.assign(n + 1, 0);
  for (std::size_t t = 0; t < n; ++t) {
    flat.dependent_offsets[t + 1] = flat.dependent_offsets[t] + counts[t];
  }
  flat.dependents.assign(total_deps, 0);
  std::vector<int> cursor(flat.dependent_offsets.begin(),
                          flat.dependent_offsets.end() - 1);
  for (const Task& task : graph.tasks()) {
    for (TaskId dep : task.deps) {
      flat.dependents[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(dep)]++)] = task.id;
    }
  }
  return flat;
}

}  // namespace mars::sim
