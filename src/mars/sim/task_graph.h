// Task graph: the executable form of a mapped workload.
//
// The evaluator lowers (mapping, strategies) into compute tasks pinned to
// accelerators and transfer tasks between accelerators (or the host), with
// explicit dependencies. The executor then replays the graph against the
// topology with link contention — the role ASTRA-Sim plays in the paper.
#pragma once

#include <string>
#include <vector>

#include "mars/util/units.h"

namespace mars::sim {

using TaskId = int;
/// Pseudo-endpoint for transfers to/from host memory.
inline constexpr int kHost = -1;

enum class TaskKind : std::uint8_t { kCompute, kTransfer, kBarrier };

struct Task {
  TaskId id = -1;
  TaskKind kind = TaskKind::kBarrier;
  std::string label;
  std::vector<TaskId> deps;

  // kCompute
  int acc = -1;
  Seconds duration{};

  // kTransfer
  int src = kHost;
  int dst = kHost;
  Bytes bytes{};
};

class TaskGraph {
 public:
  TaskId add_compute(int acc, Seconds duration, std::string label,
                     std::vector<TaskId> deps = {});
  TaskId add_transfer(int src, int dst, Bytes bytes, std::string label,
                      std::vector<TaskId> deps = {});
  /// Zero-duration synchronisation point.
  TaskId add_barrier(std::vector<TaskId> deps, std::string label = "barrier");

  [[nodiscard]] int size() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

 private:
  TaskId append(Task task);
  std::vector<Task> tasks_;
};

}  // namespace mars::sim
