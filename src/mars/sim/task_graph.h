// Task graph: the executable form of a mapped workload.
//
// The evaluator lowers (mapping, strategies) into compute tasks pinned to
// accelerators and transfer tasks between accelerators (or the host), with
// explicit dependencies. The executor then replays the graph against the
// topology with link contention — the role ASTRA-Sim plays in the paper.
#pragma once

#include <string>
#include <vector>

#include "mars/util/units.h"

namespace mars::sim {

using TaskId = int;
/// Pseudo-endpoint for transfers to/from host memory.
inline constexpr int kHost = -1;

enum class TaskKind : std::uint8_t { kCompute, kTransfer, kBarrier };

struct Task {
  TaskId id = -1;
  TaskKind kind = TaskKind::kBarrier;
  std::string label;
  std::vector<TaskId> deps;

  // kCompute
  int acc = -1;
  Seconds duration{};

  // kTransfer
  int src = kHost;
  int dst = kHost;
  Bytes bytes{};
};

class TaskGraph {
 public:
  TaskId add_compute(int acc, Seconds duration, std::string label,
                     std::vector<TaskId> deps = {});
  TaskId add_transfer(int src, int dst, Bytes bytes, std::string label,
                      std::vector<TaskId> deps = {});
  /// Zero-duration synchronisation point.
  TaskId add_barrier(std::vector<TaskId> deps, std::string label = "barrier");

  [[nodiscard]] int size() const { return static_cast<int>(tasks_.size()); }
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

 private:
  TaskId append(Task task);
  std::vector<Task> tasks_;
};

/// Structure-of-arrays form of a TaskGraph for hot replay loops.
///
/// The node-based TaskGraph is the builder/author form: one Task struct
/// per node with its own label string and dependency vector. Replaying it
/// per admitted serving request means cloning all of that onto the heap.
/// FlatTaskGraph lowers the graph once into dense index-based arrays —
/// per-task kind/resource/cost columns, a CSR adjacency of dependents, and
/// the initial missing-dependency counts — so instantiating a request is a
/// memcpy of `dep_counts` into an arena block plus root-event pushes, with
/// no allocation and no pointer chasing. Labels are dropped (the replay
/// loops never read them).
///
/// Array orders mirror the builder exactly: tasks in id order, each task's
/// dependents in graph construction order, roots in id order. The serving
/// engine's event ordering (and therefore its bit-determinism contract)
/// relies on this.
struct FlatTaskGraph {
  int size = 0;
  std::vector<TaskKind> kinds;
  std::vector<int> accs;           // kCompute (else -1)
  std::vector<Seconds> durations;  // kCompute (else 0)
  std::vector<int> srcs;           // kTransfer (else kHost)
  std::vector<int> dsts;
  std::vector<Bytes> bytes;
  /// Initial missing-dependency count per task (deps.size(), duplicates
  /// counted — matching the per-clone decrement the dependents lists do).
  std::vector<int> dep_counts;
  /// CSR adjacency: dependents of task t are
  /// dependents[dependent_offsets[t] .. dependent_offsets[t + 1]).
  std::vector<int> dependent_offsets;  // size + 1 entries
  std::vector<TaskId> dependents;
  /// Tasks with no dependencies, in id order (the events a fresh
  /// instantiation seeds).
  std::vector<TaskId> roots;

  [[nodiscard]] static FlatTaskGraph from(const TaskGraph& graph);
};

}  // namespace mars::sim
