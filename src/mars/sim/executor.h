// Event-driven task-graph execution with resource contention.
//
// Accelerators run one compute task at a time; directed channels carry one
// flow at a time at full bandwidth (FIFO). Multi-leg transfers (via the
// host) store-and-forward. Deterministic: ties resolve by event insertion
// order.
#pragma once

#include <vector>

#include "mars/sim/network.h"
#include "mars/sim/task_graph.h"

namespace mars::sim {

struct TaskTiming {
  Seconds start{};
  Seconds end{};
  bool executed = false;
};

struct ExecutionResult {
  Seconds makespan{};
  std::vector<TaskTiming> timings;  // indexed by TaskId

  /// Total busy seconds per accelerator (compute only).
  std::vector<Seconds> acc_busy;
};

class Executor {
 public:
  Executor(const topology::Topology& topo, SimParams params = {});

  /// Runs the whole graph to completion and reports the makespan.
  [[nodiscard]] ExecutionResult run(const TaskGraph& graph) const;

 private:
  const topology::Topology* topo_;
  Network network_;
};

}  // namespace mars::sim
