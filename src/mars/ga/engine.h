// Generic real-valued genetic algorithm.
//
// Both MARS levels encode their decisions as priority genes in [0, 1] and
// decode deterministically, so one engine serves both. Fitness is
// minimised (latency in seconds). Deterministic under a fixed Rng.
#pragma once

#include <functional>
#include <vector>

#include "mars/util/rng.h"

namespace mars::ga {

using Genome = std::vector<double>;
/// Lower is better. Return +inf (or any non-finite value) for invalid
/// genomes — the engine treats them as maximally unfit.
using FitnessFn = std::function<double(const Genome&)>;
/// Cooperative stop hook, polled once per generation (after the initial
/// population and after each evolved generation) with the running
/// evaluation count and best fitness so far. Returning true ends the
/// search; the engine still returns its best-so-far genome. Checking at
/// generation granularity keeps runs deterministic under evaluation
/// budgets (a run never stops mid-generation).
using StopFn = std::function<bool(long long evaluations, double best_fitness)>;
/// Optional batch evaluator: fitness for each genome, same order. When
/// provided, the engine hands it whole populations (the initial one and
/// each generation's offspring) instead of calling FitnessFn per genome —
/// the hook for parallel fitness evaluation. Must return exactly the
/// values the serial FitnessFn would: the engine's genome stream is
/// independent of evaluation (selection/mutation draw from the Rng,
/// evaluation does not), so equal values imply byte-identical searches.
using BatchFitnessFn =
    std::function<std::vector<double>(const std::vector<Genome>&)>;

/// A child genome expressed relative to a parent in the same cohort:
/// `children[i] == parents[deltas[i].parent]` except (at most) at the
/// `changed` genes. `changed` must be a superset of the genes that
/// actually differ — listing a gene an edit rewrote to its old value is
/// fine, omitting a real change is not.
struct GenomeDelta {
  std::size_t parent = 0;
  std::vector<std::size_t> changed;
};

/// Optional delta-aware batch evaluator: fitness for each child, same
/// order, given the evaluated cohort it was bred from and how each child
/// differs (the hook for incremental cost-model evaluation). Must return
/// exactly the values BatchFitnessFn would return for `children` — the
/// engine treats the two as interchangeable, so equal values imply
/// byte-identical searches.
using DeltaBatchFitnessFn = std::function<std::vector<double>(
    const std::vector<Genome>& parents, const std::vector<Genome>& children,
    const std::vector<GenomeDelta>& deltas)>;

struct GaConfig {
  int population = 32;
  int generations = 40;
  int elite = 2;            // genomes copied unchanged each generation
  int tournament = 3;       // tournament selection arity
  double crossover_rate = 0.9;
  double mutation_rate = 0.15;   // per-gene mutation probability
  double mutation_sigma = 0.25;  // gaussian step size
  double gene_lo = 0.0;
  double gene_hi = 1.0;
  /// Stop early after this many generations without improvement (<=0: off).
  int stall_generations = 12;
};

/// Throws InvalidArgument naming the offending field and value when
/// `config` cannot drive a search (population < 2, generations < 1,
/// elite outside [0, population), tournament < 1, crossover/mutation
/// rates outside [0, 1], mutation_sigma <= 0, empty gene range).
/// GaEngine's constructor calls this; front-ends (plan engines) call it
/// eagerly so a bad config fails at construction, not mid-search.
void validate_config(const GaConfig& config);

struct GaResult {
  Genome best;
  double best_fitness = 0.0;
  int generations_run = 0;
  long long evaluations = 0;
  /// Best fitness after each generation (convergence curves for Fig. 3).
  std::vector<double> history;
};

class GaEngine {
 public:
  GaEngine(GaConfig config, int genome_size);

  /// Runs the GA. `seeds` are injected into the initial population
  /// verbatim (heuristic warm starts); the rest is uniform random.
  /// `stop` (optional) is polled at generation boundaries for budget /
  /// cancellation enforcement. `batch` (optional) evaluates whole
  /// populations at once (parallel fitness); byte-identical to the serial
  /// path as long as it returns the same values as `fitness`. `delta`
  /// (optional) replaces `batch` for offspring cohorts: the engine then
  /// reports each child's breeding parent and the exact genes where the
  /// child differs from it, so the evaluator can price the move
  /// incrementally. The initial population (no parents) always goes
  /// through `batch`/`fitness`.
  [[nodiscard]] GaResult minimize(const FitnessFn& fitness, Rng& rng,
                                  const std::vector<Genome>& seeds = {},
                                  const StopFn& stop = {},
                                  const BatchFitnessFn& batch = {},
                                  const DeltaBatchFitnessFn& delta = {}) const;

  [[nodiscard]] const GaConfig& config() const { return config_; }
  [[nodiscard]] int genome_size() const { return genome_size_; }

 private:
  GaConfig config_;
  int genome_size_;
};

}  // namespace mars::ga
