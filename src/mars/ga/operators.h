// GA variation operators, exposed for direct testing.
#pragma once

#include <vector>

#include "mars/ga/engine.h"
#include "mars/util/rng.h"

namespace mars::ga {

/// Index of the tournament winner among `fitness` (lower wins).
[[nodiscard]] std::size_t tournament_select(const std::vector<double>& fitness,
                                            int arity, Rng& rng);

/// Uniform crossover: each gene taken from either parent with equal odds.
[[nodiscard]] Genome uniform_crossover(const Genome& a, const Genome& b, Rng& rng);

/// Gaussian per-gene mutation clamped to [lo, hi].
void gaussian_mutate(Genome& genome, double rate, double sigma, double lo,
                     double hi, Rng& rng);

/// Uniform random genome in [lo, hi].
[[nodiscard]] Genome random_genome(int size, double lo, double hi, Rng& rng);

}  // namespace mars::ga
