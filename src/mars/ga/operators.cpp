#include "mars/ga/operators.h"

#include <algorithm>

#include "mars/util/error.h"

namespace mars::ga {

std::size_t tournament_select(const std::vector<double>& fitness, int arity,
                              Rng& rng) {
  MARS_CHECK_ARG(!fitness.empty(), "selection over empty population");
  MARS_CHECK_ARG(arity >= 1, "tournament arity must be >= 1");
  std::size_t best = rng.index(fitness.size());
  for (int i = 1; i < arity; ++i) {
    const std::size_t challenger = rng.index(fitness.size());
    if (fitness[challenger] < fitness[best]) best = challenger;
  }
  return best;
}

Genome uniform_crossover(const Genome& a, const Genome& b, Rng& rng) {
  MARS_CHECK_ARG(a.size() == b.size(), "crossover of mismatched genomes");
  Genome child(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    child[i] = rng.chance(0.5) ? a[i] : b[i];
  }
  return child;
}

void gaussian_mutate(Genome& genome, double rate, double sigma, double lo,
                     double hi, Rng& rng) {
  for (double& gene : genome) {
    if (rng.chance(rate)) {
      gene = std::clamp(gene + rng.gaussian(0.0, sigma), lo, hi);
    }
  }
}

Genome random_genome(int size, double lo, double hi, Rng& rng) {
  Genome genome(static_cast<std::size_t>(size));
  for (double& gene : genome) gene = rng.uniform(lo, hi);
  return genome;
}

}  // namespace mars::ga
