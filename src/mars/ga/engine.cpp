#include "mars/ga/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "mars/ga/operators.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::ga {

void validate_config(const GaConfig& config) {
  MARS_CHECK_ARG(config.population >= 2,
                 "GA population must be >= 2, got " << config.population);
  MARS_CHECK_ARG(config.generations >= 1,
                 "GA generations must be >= 1, got " << config.generations);
  MARS_CHECK_ARG(config.elite >= 0 && config.elite < config.population,
                 "GA elite count must be in [0, population), got elite = "
                     << config.elite << " with population = "
                     << config.population);
  MARS_CHECK_ARG(config.tournament >= 1,
                 "GA tournament arity must be >= 1, got " << config.tournament);
  MARS_CHECK_ARG(
      config.crossover_rate >= 0.0 && config.crossover_rate <= 1.0,
      "GA crossover_rate must be in [0, 1], got " << config.crossover_rate);
  MARS_CHECK_ARG(
      config.mutation_rate >= 0.0 && config.mutation_rate <= 1.0,
      "GA mutation_rate must be in [0, 1], got " << config.mutation_rate);
  MARS_CHECK_ARG(config.mutation_sigma > 0.0,
                 "GA mutation_sigma must be > 0, got " << config.mutation_sigma);
  MARS_CHECK_ARG(config.gene_lo < config.gene_hi,
                 "GA gene range is empty: [" << config.gene_lo << ", "
                                             << config.gene_hi << ")");
}

GaEngine::GaEngine(GaConfig config, int genome_size)
    : config_(config), genome_size_(genome_size) {
  validate_config(config);
  MARS_CHECK_ARG(genome_size >= 1,
                 "GA genome must have at least one gene, got " << genome_size);
}

GaResult GaEngine::minimize(const FitnessFn& fitness, Rng& rng,
                            const std::vector<Genome>& seeds,
                            const StopFn& stop,
                            const BatchFitnessFn& batch,
                            const DeltaBatchFitnessFn& delta) const {
  const auto pop_size = static_cast<std::size_t>(config_.population);
  std::vector<Genome> population;
  population.reserve(pop_size);
  for (const Genome& seed : seeds) {
    MARS_CHECK_ARG(seed.size() == static_cast<std::size_t>(genome_size_),
                   "seed genome size mismatch");
    if (population.size() < pop_size) population.push_back(seed);
  }
  while (population.size() < pop_size) {
    population.push_back(
        random_genome(genome_size_, config_.gene_lo, config_.gene_hi, rng));
  }

  GaResult result;
  result.best_fitness = std::numeric_limits<double>::infinity();

  // Count/clamp shared by every evaluator: non-finite values become +inf
  // (maximally unfit), and the evaluation budget advances per genome.
  auto finalize_scores = [&](std::vector<double> values, std::size_t expected) {
    MARS_CHECK(values.size() == expected,
               "batch fitness returned " << values.size() << " scores for "
                                         << expected << " genomes");
    for (double& value : values) {
      if (!std::isfinite(value)) value = std::numeric_limits<double>::infinity();
    }
    result.evaluations += static_cast<long long>(expected);
    return values;
  };

  // Scores for a group of genomes, through `batch` when provided (the
  // parallel path) or `fitness` one by one.
  auto evaluate_all = [&](const std::vector<Genome>& genomes) {
    std::vector<double> values =
        batch ? batch(genomes) : std::vector<double>();
    if (!batch) {
      values.reserve(genomes.size());
      for (const Genome& genome : genomes) values.push_back(fitness(genome));
    }
    return finalize_scores(std::move(values), genomes.size());
  };

  std::vector<double> scores = evaluate_all(population);

  int stall = 0;
  for (int generation = 0; generation < config_.generations; ++generation) {
    // Track the incumbent.
    const std::size_t arg_best = static_cast<std::size_t>(
        std::min_element(scores.begin(), scores.end()) - scores.begin());
    if (scores[arg_best] < result.best_fitness) {
      result.best_fitness = scores[arg_best];
      result.best = population[arg_best];
      stall = 0;
    } else {
      ++stall;
    }
    result.history.push_back(result.best_fitness);
    result.generations_run = generation + 1;
    if (stop && stop(result.evaluations, result.best_fitness)) {
      MARS_DEBUG << "GA stopped by budget/cancellation at generation "
                 << generation;
      break;
    }
    if (config_.stall_generations > 0 && stall >= config_.stall_generations) {
      MARS_DEBUG << "GA early stop at generation " << generation;
      break;
    }

    // Next generation: elites survive; the rest come from tournament
    // selection + crossover + mutation.
    std::vector<std::size_t> order(pop_size);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

    std::vector<Genome> next;
    std::vector<double> next_scores;
    next.reserve(pop_size);
    next_scores.reserve(pop_size);
    for (int e = 0; e < config_.elite; ++e) {
      next.push_back(population[order[static_cast<std::size_t>(e)]]);
      next_scores.push_back(scores[order[static_cast<std::size_t>(e)]]);
    }
    // Breed the whole offspring cohort first, then evaluate it as one
    // batch: only breeding draws from the Rng, so the genome stream —
    // and with it the search — is identical to child-at-a-time
    // interleaving, while the evaluations become batchable.
    std::vector<Genome> offspring;
    std::vector<GenomeDelta> moves;  // one per child when `delta` is set
    offspring.reserve(pop_size - next.size());
    if (delta) moves.reserve(pop_size - next.size());
    while (next.size() + offspring.size() < pop_size) {
      const std::size_t pa = tournament_select(scores, config_.tournament, rng);
      const Genome& parent_a = population[pa];
      const Genome& parent_b =
          population[tournament_select(scores, config_.tournament, rng)];
      Genome child = rng.chance(config_.crossover_rate)
                         ? uniform_crossover(parent_a, parent_b, rng)
                         : parent_a;
      gaussian_mutate(child, config_.mutation_rate, config_.mutation_sigma,
                      config_.gene_lo, config_.gene_hi, rng);
      if (delta) {
        // Exact diff against the breeding parent: crossover pulls in
        // parent_b genes and mutation perturbs, so the scan — not the
        // operators — is the source of truth for what moved.
        GenomeDelta move;
        move.parent = pa;
        for (std::size_t g = 0; g < child.size(); ++g) {
          if (child[g] != parent_a[g]) move.changed.push_back(g);
        }
        moves.push_back(std::move(move));
      }
      offspring.push_back(std::move(child));
    }
    std::vector<double> offspring_scores =
        delta ? finalize_scores(delta(population, offspring, moves),
                                offspring.size())
              : evaluate_all(offspring);
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      next.push_back(std::move(offspring[i]));
      next_scores.push_back(offspring_scores[i]);
    }
    population = std::move(next);
    scores = std::move(next_scores);
  }

  // Final sweep (the loop records bests at generation entry).
  const std::size_t arg_best = static_cast<std::size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
  if (scores[arg_best] < result.best_fitness) {
    result.best_fitness = scores[arg_best];
    result.best = population[arg_best];
  }
  MARS_CHECK(!result.best.empty(), "GA produced no candidate");
  return result;
}

}  // namespace mars::ga
