// Second-level search: parallelism strategies for one (LayerSet, AccSet)
// sub-problem (Section V, green/blue boxes of Fig. 3).
//
// Two engines:
//  * greedy()  — deterministic forward pass: per layer, pick the strategy
//    minimising that layer's cost given the activation layout left by the
//    previous layer. Fast enough to serve as the first level's fitness
//    oracle (results are memoised by the caller).
//  * refine()  — the paper's genetic algorithm over per-layer priority
//    genes, seeded with the greedy solution; used to polish the winning
//    skeleton and for the Fig. 3 convergence bench.
#pragma once

#include "mars/core/cost_model.h"
#include "mars/ga/engine.h"

namespace mars::core {

struct SecondLevelConfig {
  ga::GaConfig ga{.population = 24,
                  .generations = 25,
                  .elite = 2,
                  .tournament = 3,
                  .crossover_rate = 0.9,
                  .mutation_rate = 0.2,
                  .mutation_sigma = 0.3,
                  .stall_generations = 8};
  bool enable_ss = true;  // ablation A2 switches SS off
  int max_es_dims = 3;
};

struct SecondLevelResult {
  std::vector<parallel::Strategy> strategies;
  SetCost cost;
};

class SecondLevelSearch {
 public:
  /// Genes per layer: [factorization selector, SS enable,
  ///                   6 ES priorities, 6 SS priorities].
  static constexpr int kGenesPerLayer = 14;

  SecondLevelSearch(const Problem& problem, SecondLevelConfig config);

  /// Deterministic decode of one layer's strategy from its gene block.
  [[nodiscard]] parallel::Strategy decode_layer(const graph::ConvShape& shape,
                                                int p,
                                                const double* genes) const;

  /// Forward-greedy strategy selection for `skeleton` (strategies ignored).
  [[nodiscard]] SecondLevelResult greedy(const LayerAssignment& skeleton) const;

  /// GA polish, seeded with `seed_strategies` when provided.
  [[nodiscard]] SecondLevelResult refine(
      const LayerAssignment& skeleton, Rng& rng,
      const std::vector<parallel::Strategy>* seed_strategies = nullptr,
      ga::GaResult* ga_out = nullptr) const;

  [[nodiscard]] const SecondLevelConfig& config() const { return config_; }
  [[nodiscard]] const AnalyticalCostModel& model() const { return model_; }

 private:
  [[nodiscard]] std::vector<parallel::Strategy> decode_all(
      const LayerAssignment& skeleton, const ga::Genome& genome) const;

  const Problem* problem_;
  SecondLevelConfig config_;
  AnalyticalCostModel model_;
};

}  // namespace mars::core
