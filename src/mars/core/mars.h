// MARS: the two-level genetic mapping algorithm (Section V).
//
// First level (GaEngine over FirstLevelCodec genomes): accelerator-set
// partition from the edge-removal candidate family, per-set designs, and
// contiguous layer allocation. Its fitness evaluates each candidate set
// with the memoised second-level search and adds inter-set and host I/O
// costs. Second level: per-layer ES/SS strategies (greedy oracle inside
// the loop, GA polish on the winner — see second_level.h). The shared
// search-space machinery (codec, profile, memoised second level) lives in
// core/skeleton_space.h so other engines (mars::plan) reuse it.
//
// Ownership: Mars keeps a non-owning pointer to the Problem, which in turn
// points (non-owning) at the spine, topology and design registry — the
// caller keeps all four alive for the lifetime of the Mars object and of
// any evaluator built from the same Problem. Deterministic under
// MarsConfig::seed (util/rng.h is the only randomness source). All
// latencies are Seconds and all sizes Bytes (util/units.h); raw doubles
// are accelerator cycle counts at the owning design's frequency.
#pragma once

#include <cstdint>

#include "mars/core/skeleton_space.h"

namespace mars::core {

struct MarsConfig {
  ga::GaConfig first_ga{.population = 32,
                        .generations = 40,
                        .elite = 2,
                        .tournament = 3,
                        .crossover_rate = 0.9,
                        .mutation_rate = 0.15,
                        .mutation_sigma = 0.25,
                        .stall_generations = 12};
  SecondLevelConfig second;
  /// Polish the winning skeleton's strategies with the second-level GA.
  bool refine_winner = true;
  /// Seed the population with the baseline mapping (guarantees MARS never
  /// loses to it under the analytic model).
  bool seed_baseline = true;
  /// Initialise design genes from profiled per-design scores (Section V).
  bool profiled_init = true;
  /// Use the edge-removal/bisection AccSet candidates; when false (ablation
  /// A3) only the trivial family {full system} u {singletons} is offered.
  bool heuristic_candidates = true;
  /// Single-level ablation (A1): decode strategies from one flat genome
  /// instead of running the second level per set.
  bool two_level = true;
  std::uint64_t seed = 1;
  /// Fitness-evaluation threads (a util::WorkerPool sized here). Purely
  /// an execution knob: results are byte-identical at any value, so it is
  /// deliberately NOT part of any engine spec_string / cache fingerprint.
  int threads = 1;
};

/// Throws InvalidArgument (naming the bad field and value) when either GA
/// level's config cannot drive a search.
void validate_config(const MarsConfig& config);

struct MarsResult {
  Mapping mapping;
  EvaluationSummary summary;
  ga::GaResult first_level;  // convergence history (Fig. 3 / bench)
  long long second_level_hits = 0;
  long long second_level_misses = 0;
};

class Mars {
 public:
  Mars(const Problem& problem, MarsConfig config = {});

  /// Runs the full search and returns the best mapping with both cost
  /// views (analytic + event-driven simulation). `stop` (optional) is
  /// polled at first-level generation boundaries — budgeted/cancellable
  /// callers (plan::GaEngine) use it; a stopped search still returns its
  /// best-so-far mapping.
  [[nodiscard]] MarsResult search(const ga::StopFn& stop = {});

  [[nodiscard]] const FirstLevelCodec& codec() const { return space_.codec(); }
  [[nodiscard]] const accel::ProfileMatrix& profile() const {
    return space_.profile();
  }

 private:
  const Problem* problem_;
  MarsConfig config_;
  SkeletonSpace space_;
};

}  // namespace mars::core
