#include "mars/core/second_level.h"

#include <algorithm>
#include <numeric>

#include "mars/util/error.h"

namespace mars::core {
namespace {

// Dims ordered by a 6-gene priority block, descending.
std::vector<parallel::Dim> dims_by_priority(const double* genes) {
  std::vector<int> order(parallel::kNumDims);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return genes[a] > genes[b]; });
  std::vector<parallel::Dim> dims;
  dims.reserve(order.size());
  for (int index : order) dims.push_back(parallel::kAllDims[static_cast<std::size_t>(index)]);
  return dims;
}

}  // namespace

SecondLevelSearch::SecondLevelSearch(const Problem& problem,
                                     SecondLevelConfig config)
    : problem_(&problem), config_(config), model_(problem) {}

parallel::Strategy SecondLevelSearch::decode_layer(const graph::ConvShape& shape,
                                                   int p,
                                                   const double* genes) const {
  if (p <= 1) return parallel::Strategy{};

  const std::vector<std::vector<int>> facts =
      parallel::factorizations(p, config_.max_es_dims);
  MARS_CHECK(!facts.empty(), "no factorization for p=" << p);
  const auto k = static_cast<int>(facts.size());
  const int preferred =
      std::min(static_cast<int>(genes[0] * k), k - 1);
  const std::vector<parallel::Dim> es_order = dims_by_priority(genes + 2);

  // Try factorizations starting at the gene-selected one; assign factors
  // (non-increasing) to the highest-priority dims that can hold them.
  std::vector<parallel::DimSplit> es;
  bool assigned = false;
  for (int attempt = 0; attempt < k && !assigned; ++attempt) {
    const std::vector<int>& factors =
        facts[static_cast<std::size_t>((preferred + attempt) % k)];
    es.clear();
    int used = 0;
    for (int factor : factors) {
      bool placed = false;
      for (parallel::Dim dim : es_order) {
        const int bit = 1 << static_cast<int>(dim);
        if ((used & bit) != 0) continue;
        if (parallel::dim_extent(shape, dim) < factor) continue;
        es.push_back({dim, factor});
        used |= bit;
        placed = true;
        break;
      }
      if (!placed) break;
    }
    assigned = es.size() == factors.size();
  }
  if (!assigned) {
    // Last resort: the whole split on the widest dim.
    parallel::Dim widest = parallel::Dim::kCout;
    for (parallel::Dim dim : parallel::kAllDims) {
      if (parallel::dim_extent(shape, dim) >
          parallel::dim_extent(shape, widest)) {
        widest = dim;
      }
    }
    MARS_CHECK(parallel::dim_extent(shape, widest) >= p,
               "layer " << graph::to_string(shape)
                        << " cannot be split across " << p << " accelerators");
    es = {{widest, p}};
  }

  parallel::Strategy base{es, std::nullopt};
  if (!config_.enable_ss || genes[1] <= 0.5) return base;

  // SS dim: highest SS-priority dim outside ES that can host p shards.
  for (parallel::Dim dim : dims_by_priority(genes + 8)) {
    if (base.ways_of(dim) > 1) continue;
    parallel::Strategy with_ss{es, dim};
    if (with_ss.fits(shape, p)) return with_ss;
  }
  return base;
}

std::vector<parallel::Strategy> SecondLevelSearch::decode_all(
    const LayerAssignment& skeleton, const ga::Genome& genome) const {
  const int p = skeleton.num_accs();
  std::vector<parallel::Strategy> strategies;
  strategies.reserve(static_cast<std::size_t>(skeleton.num_layers()));
  for (int layer = skeleton.begin; layer < skeleton.end; ++layer) {
    const double* genes =
        genome.data() +
        static_cast<std::size_t>(layer - skeleton.begin) * kGenesPerLayer;
    strategies.push_back(
        decode_layer(problem_->spine->node(layer).shape, p, genes));
  }
  return strategies;
}

SecondLevelResult SecondLevelSearch::greedy(const LayerAssignment& skeleton) const {
  const int p = skeleton.num_accs();
  SecondLevelResult result;
  std::optional<parallel::ActivationSharding> upstream;

  LayerAssignment probe = skeleton;  // carries accs/design for layer_cost
  for (int layer = skeleton.begin; layer < skeleton.end; ++layer) {
    const graph::ConvShape& shape = problem_->spine->node(layer).shape;
    std::vector<parallel::Strategy> options =
        parallel::enumerate_strategies(shape, p, config_.max_es_dims);
    if (!config_.enable_ss) {
      options.erase(std::remove_if(options.begin(), options.end(),
                                   [](const parallel::Strategy& s) {
                                     return s.has_ss();
                                   }),
                    options.end());
    }
    MARS_CHECK(!options.empty(), "no valid strategy for layer "
                                     << problem_->spine->node(layer).name
                                     << " on " << p << " accelerators");
    const parallel::Strategy* best = nullptr;
    Seconds best_time(0.0);
    LayerCost best_cost;
    for (const parallel::Strategy& option : options) {
      const LayerCost cost = model_.layer_cost(probe, layer, option, upstream);
      if (best == nullptr || cost.total() < best_time) {
        best = &option;
        best_time = cost.total();
        best_cost = cost;
      }
    }
    result.strategies.push_back(*best);
    upstream = best_cost.plan.produced;
  }

  LayerAssignment full = skeleton;
  full.strategies = result.strategies;
  result.cost = model_.set_cost(full);

  // Memory repair: the latency-greedy pass ignores DRAM residency. When
  // the set does not fit, re-pick strategies for the heaviest layers,
  // minimising per-accelerator weight residency (ties by latency) — this
  // is where shared shards earn their keep (Section IV: SS relieves the
  // memory burden by keeping only a rotating 1/p shard resident).
  if (!result.cost.memory_ok && p > 1) {
    std::vector<int> order(static_cast<std::size_t>(skeleton.num_layers()));
    std::iota(order.begin(), order.end(), 0);
    std::vector<parallel::ShardingPlan> plans;
    plans.reserve(order.size());
    for (int i = 0; i < skeleton.num_layers(); ++i) {
      plans.push_back(parallel::make_plan(
          problem_->spine->node(skeleton.begin + i).shape,
          problem_->spine->dtype(),
          result.strategies[static_cast<std::size_t>(i)], p));
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return plans[static_cast<std::size_t>(a)].weight_resident >
             plans[static_cast<std::size_t>(b)].weight_resident;
    });
    for (int index : order) {
      const int layer = skeleton.begin + index;
      const graph::ConvShape& shape = problem_->spine->node(layer).shape;
      std::vector<parallel::Strategy> options =
          parallel::enumerate_strategies(shape, p, config_.max_es_dims);
      if (!config_.enable_ss) {
        options.erase(std::remove_if(options.begin(), options.end(),
                                     [](const parallel::Strategy& s) {
                                       return s.has_ss();
                                     }),
                      options.end());
      }
      const parallel::Strategy* lightest = nullptr;
      Bytes lightest_bytes{};
      Seconds lightest_time{};
      for (const parallel::Strategy& option : options) {
        const parallel::ShardingPlan plan =
            parallel::make_plan(shape, problem_->spine->dtype(), option, p);
        const Seconds time =
            model_.layer_cost(skeleton, layer, option, std::nullopt).total();
        if (lightest == nullptr || plan.weight_resident < lightest_bytes ||
            (plan.weight_resident == lightest_bytes && time < lightest_time)) {
          lightest = &option;
          lightest_bytes = plan.weight_resident;
          lightest_time = time;
        }
      }
      result.strategies[static_cast<std::size_t>(index)] = *lightest;
      full.strategies = result.strategies;
      const SetCost repaired = model_.set_cost(full);
      if (repaired.memory_ok) {
        result.cost = repaired;
        break;
      }
      result.cost = repaired;
    }
  }
  return result;
}

SecondLevelResult SecondLevelSearch::refine(
    const LayerAssignment& skeleton, Rng& rng,
    const std::vector<parallel::Strategy>* seed_strategies,
    ga::GaResult* ga_out) const {
  const int genome_size = kGenesPerLayer * skeleton.num_layers();
  ga::GaEngine engine(config_.ga, genome_size);

  auto fitness = [&](const ga::Genome& genome) {
    LayerAssignment candidate = skeleton;
    candidate.strategies = decode_all(skeleton, genome);
    return model_.set_cost(candidate).penalized.count();
  };

  // Seed: encode the provided strategies (or the greedy solution) as genes
  // that decode back to themselves.
  std::vector<parallel::Strategy> seed =
      seed_strategies != nullptr ? *seed_strategies : greedy(skeleton).strategies;
  ga::Genome seed_genome(static_cast<std::size_t>(genome_size), 0.1);
  const int p = skeleton.num_accs();
  const std::vector<std::vector<int>> facts =
      parallel::factorizations(std::max(p, 2), config_.max_es_dims);
  for (int layer = skeleton.begin; layer < skeleton.end; ++layer) {
    const std::size_t base =
        static_cast<std::size_t>(layer - skeleton.begin) * kGenesPerLayer;
    const parallel::Strategy& strategy =
        seed[static_cast<std::size_t>(layer - skeleton.begin)];
    // Factorization selector: find the multiset of ES ways.
    std::vector<int> ways;
    for (const parallel::DimSplit& split : strategy.es()) ways.push_back(split.ways);
    std::sort(ways.begin(), ways.end(), std::greater<>());
    for (std::size_t f = 0; f < facts.size(); ++f) {
      if (facts[f] == ways) {
        seed_genome[base] = (static_cast<double>(f) + 0.5) / facts.size();
        break;
      }
    }
    seed_genome[base + 1] = strategy.has_ss() ? 0.9 : 0.1;
    // ES priorities: rank split dims by ways (larger first).
    double priority = 1.0;
    std::vector<parallel::DimSplit> splits = strategy.es();
    std::sort(splits.begin(), splits.end(),
              [](const parallel::DimSplit& a, const parallel::DimSplit& b) {
                return a.ways > b.ways;
              });
    for (const parallel::DimSplit& split : splits) {
      seed_genome[base + 2 + static_cast<std::size_t>(split.dim)] = priority;
      priority -= 0.15;
    }
    if (strategy.has_ss()) {
      seed_genome[base + 8 + static_cast<std::size_t>(*strategy.ss())] = 1.0;
    }
  }

  const ga::GaResult ga_result = engine.minimize(fitness, rng, {seed_genome});
  if (ga_out != nullptr) *ga_out = ga_result;

  SecondLevelResult result;
  result.strategies = decode_all(skeleton, ga_result.best);
  LayerAssignment full = skeleton;
  full.strategies = result.strategies;
  result.cost = model_.set_cost(full);
  return result;
}

}  // namespace mars::core
