#include "mars/core/first_level.h"

#include <algorithm>

#include "mars/ga/operators.h"
#include "mars/util/error.h"

namespace mars::core {

FirstLevelCodec::FirstLevelCodec(const Problem& problem,
                                 std::vector<topology::AccSetCandidate> candidates)
    : problem_(&problem), candidates_(std::move(candidates)) {
  MARS_CHECK_ARG(!candidates_.empty(), "no AccSet candidates");
}

int FirstLevelCodec::genome_size() const {
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  return c * (2 + d);
}

int FirstLevelCodec::candidate_index(topology::AccMask mask) const {
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].mask == mask) return static_cast<int>(i);
  }
  MARS_THROW("mask " << topology::mask_to_string(mask)
                     << " is not a candidate AccSet");
}

FirstLevelCodec::GeneBlock FirstLevelCodec::block_of(std::size_t gene) const {
  MARS_CHECK_ARG(gene < static_cast<std::size_t>(genome_size()),
                 "gene index " << gene << " outside genome of size "
                               << genome_size());
  const auto c = candidates_.size();
  const auto d = static_cast<std::size_t>(problem_->designs->size());
  if (gene < c) return GeneBlock::kPriority;
  if (gene < c + c * d) return GeneBlock::kDesign;
  return GeneBlock::kShare;
}

int FirstLevelCodec::candidate_of(std::size_t gene) const {
  const auto c = candidates_.size();
  const auto d = static_cast<std::size_t>(problem_->designs->size());
  switch (block_of(gene)) {
    case GeneBlock::kPriority:
      return static_cast<int>(gene);
    case GeneBlock::kDesign:
      return static_cast<int>((gene - c) / d);
    case GeneBlock::kShare:
      return static_cast<int>(gene - c - c * d);
  }
  MARS_THROW("unreachable gene block");
}

std::vector<int> FirstLevelCodec::decode_counts(
    const double* share_genes, const std::vector<int>& candidate) const {
  // Shares: proportional layer allocation with a small floor so a set only
  // drops out when its gene is pushed firmly to zero. Scratch buffers are
  // thread_local because this sits on the hottest decode path (every full
  // decode and most retraces) and decode_batch fans decodes across the
  // worker pool.
  const int num_layers = problem_->spine->size();
  thread_local std::vector<double> shares;
  shares.clear();
  shares.reserve(candidate.size());
  double share_sum = 0.0;
  for (int index : candidate) {
    const double share = std::max(0.0, share_genes[index]);
    shares.push_back(share);
    share_sum += share;
  }
  if (share_sum <= 0.0) {
    shares.assign(candidate.size(), 1.0);
    share_sum = static_cast<double>(candidate.size());
  }

  // Largest-remainder rounding to exactly num_layers. The descending
  // stable insertion sort below yields the same (unique) permutation
  // std::stable_sort would: equal remainders keep their index order.
  std::vector<int> counts(candidate.size(), 0);
  thread_local std::vector<std::pair<double, std::size_t>> remainders;
  remainders.clear();
  remainders.reserve(candidate.size());
  int allocated = 0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    const double exact = num_layers * shares[i] / share_sum;
    counts[i] = static_cast<int>(exact);
    allocated += counts[i];
    remainders.emplace_back(exact - counts[i], i);
  }
  for (std::size_t j = 1; j < remainders.size(); ++j) {
    const std::pair<double, std::size_t> x = remainders[j];
    std::size_t k = j;
    while (k > 0 && remainders[k - 1].first < x.first) {
      remainders[k] = remainders[k - 1];
      --k;
    }
    remainders[k] = x;
  }
  for (int extra = num_layers - allocated; extra > 0; --extra) {
    counts[remainders[static_cast<std::size_t>(num_layers - allocated - extra) %
                      remainders.size()]
               .second] += 1;
  }
  return counts;
}

int FirstLevelCodec::decode_design(const double* design_genes,
                                   int candidate) const {
  const int d = problem_->designs->size();
  int best = 0;
  for (int k = 1; k < d; ++k) {
    if (design_genes[candidate * d + k] > design_genes[candidate * d + best]) {
      best = k;
    }
  }
  return best;
}

Skeleton FirstLevelCodec::assemble(const DecodeTrace& trace) const {
  Skeleton skeleton;
  int cursor = 0;
  for (std::size_t i = 0; i < trace.partition.size(); ++i) {
    if (trace.counts[i] == 0) continue;  // unused set: accelerators idle
    LayerAssignment set;
    set.accs = trace.partition[i];
    set.begin = cursor;
    set.end = cursor + trace.counts[i];
    cursor = set.end;
    if (problem_->adaptive) set.design = trace.designs[i];
    skeleton.sets.push_back(set);
  }
  MARS_CHECK(cursor == problem_->spine->size() && !skeleton.sets.empty(),
             "layer allocation failed to cover the spine");
  return skeleton;
}

Skeleton FirstLevelCodec::decode(const ga::Genome& genome,
                                 DecodeTrace* trace) const {
  MARS_CHECK_ARG(static_cast<int>(genome.size()) == genome_size(),
                 "genome size mismatch");
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  const double* prio = genome.data();
  const double* design_genes = genome.data() + c;
  const double* share_genes = genome.data() + c + c * d;

  DecodeTrace t;
  t.partition =
      topology::decode_partition(*problem_->topo, candidates_,
                                 std::vector<double>(prio, prio + c),
                                 problem_->placement_mask());
  t.candidate.reserve(t.partition.size());
  for (topology::AccMask mask : t.partition) {
    t.candidate.push_back(candidate_index(mask));
  }
  t.counts = decode_counts(share_genes, t.candidate);
  t.designs.reserve(t.partition.size());
  for (int index : t.candidate) {
    t.designs.push_back(problem_->adaptive ? decode_design(design_genes, index)
                                           : -1);
  }

  Skeleton skeleton = assemble(t);
  if (trace != nullptr) *trace = std::move(t);
  return skeleton;
}

namespace {

/// The <, >, or tie outcome decode_partition's comparator sees for a pair.
int trichotomy(double x, double y) {
  return static_cast<int>(x > y) - static_cast<int>(y > x);
}

}  // namespace

FirstLevelCodec::Retrace FirstLevelCodec::retrace(
    const ga::Genome& child, const ga::Genome& parent,
    const DecodeTrace& parent_trace,
    const std::vector<std::size_t>& changed) const {
  MARS_CHECK_ARG(static_cast<int>(child.size()) == genome_size(),
                 "genome size mismatch");
  MARS_CHECK_ARG(parent.size() == child.size(), "parent genome size mismatch");
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();

  bool shares_changed = false;
  std::vector<std::size_t> changed_priorities;
  std::vector<int> touched_candidates;
  for (std::size_t gene : changed) {
    switch (block_of(gene)) {
      case GeneBlock::kPriority:
        changed_priorities.push_back(gene);
        break;
      case GeneBlock::kDesign:
        touched_candidates.push_back(candidate_of(gene));
        break;
      case GeneBlock::kShare:
        shares_changed = true;
        break;
    }
  }

  Retrace rt;

  // Priority genes feed only the partition decode, and the partition is a
  // pure function of the candidates' stable-sort order. If every pair
  // involving a changed priority gene keeps its comparison outcome, the
  // sort permutation — and therefore the partition — is provably the
  // parent's without recomputing it. Only order-crossing moves recompute,
  // and only an actually moved partition rebuilds downstream stages from
  // the partition just computed (decode() minus its partition call).
  bool order_crossed = false;
  for (std::size_t g : changed_priorities) {
    for (int j = 0; j < c && !order_crossed; ++j) {
      if (static_cast<std::size_t>(j) == g) continue;
      order_crossed = trichotomy(parent[g], parent[j]) !=
                      trichotomy(child[g], child[j]);
    }
    if (order_crossed) break;
  }
  if (order_crossed) {
    const double* prio = child.data();
    std::vector<topology::AccMask> partition = topology::decode_partition(
        *problem_->topo, candidates_, std::vector<double>(prio, prio + c),
        problem_->placement_mask());
    if (partition != parent_trace.partition) {
      rt.same = false;
      DecodeTrace& t = rt.trace;
      t.partition = std::move(partition);
      t.candidate.reserve(t.partition.size());
      for (topology::AccMask mask : t.partition) {
        t.candidate.push_back(candidate_index(mask));
      }
      t.counts = decode_counts(child.data() + c + c * d, t.candidate);
      t.designs.reserve(t.partition.size());
      for (int index : t.candidate) {
        t.designs.push_back(
            problem_->adaptive ? decode_design(child.data() + c, index) : -1);
      }
      return rt;
    }
  }

  // Partition held: recompute counts/designs only where genes moved, and
  // compare against the parent before materialising anything.
  std::vector<int> counts;
  bool counts_differ = false;
  if (shares_changed) {
    counts = decode_counts(child.data() + c + c * d, parent_trace.candidate);
    counts_differ = counts != parent_trace.counts;
  }
  std::vector<std::pair<std::size_t, int>> design_updates;
  if (problem_->adaptive && !touched_candidates.empty()) {
    for (std::size_t i = 0; i < parent_trace.candidate.size(); ++i) {
      if (std::find(touched_candidates.begin(), touched_candidates.end(),
                    parent_trace.candidate[i]) != touched_candidates.end()) {
        const int design =
            decode_design(child.data() + c, parent_trace.candidate[i]);
        if (design != parent_trace.designs[i]) {
          design_updates.emplace_back(i, design);
        }
      }
    }
  }
  if (!counts_differ && design_updates.empty()) return rt;  // same trace

  rt.same = false;
  rt.trace = parent_trace;
  if (counts_differ) rt.trace.counts = std::move(counts);
  for (const auto& [entry, design] : design_updates) {
    rt.trace.designs[entry] = design;
  }
  return rt;
}

Skeleton FirstLevelCodec::redecode(const ga::Genome& child,
                                   const ga::Genome& parent,
                                   const DecodeTrace& parent_trace,
                                   const std::vector<std::size_t>& changed,
                                   DecodeTrace* trace) const {
  Retrace rt = retrace(child, parent, parent_trace, changed);
  const DecodeTrace& t = rt.same ? parent_trace : rt.trace;
  Skeleton skeleton = assemble(t);
  if (trace != nullptr) *trace = t;
  return skeleton;
}

ga::Genome FirstLevelCodec::encode(const Skeleton& skeleton,
                                   const std::vector<double>& design_scores) const {
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  MARS_CHECK_ARG(static_cast<int>(design_scores.size()) == d,
                 "one score per design required");
  ga::Genome genome(static_cast<std::size_t>(genome_size()), 0.0);

  // Candidate priorities: chosen sets get descending high priorities so the
  // greedy partition decoder picks exactly them.
  double priority = 1.0;
  const int num_layers = problem_->spine->size();
  for (const LayerAssignment& set : skeleton.sets) {
    const int index = candidate_index(set.accs);
    genome[static_cast<std::size_t>(index)] = priority;
    priority -= 0.05;

    for (int k = 0; k < d; ++k) {
      genome[static_cast<std::size_t>(c + index * d + k)] =
          0.5 * design_scores[static_cast<std::size_t>(k)];
    }
    if (problem_->adaptive) {
      MARS_CHECK_ARG(set.design >= 0 && set.design < d, "skeleton missing design");
      genome[static_cast<std::size_t>(c + index * d + set.design)] = 1.0;
    }
    genome[static_cast<std::size_t>(c + c * d + index)] =
        static_cast<double>(set.num_layers()) / num_layers;
  }
  return genome;
}

ga::Genome FirstLevelCodec::profiled_random(
    const std::vector<double>& design_scores, Rng& rng) const {
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  MARS_CHECK_ARG(static_cast<int>(design_scores.size()) == d,
                 "one score per design required");
  ga::Genome genome = ga::random_genome(genome_size(), 0.0, 1.0, rng);
  // The paper initialises design genes from normalised profiled
  // performance; jitter keeps the population diverse.
  for (int index = 0; index < c; ++index) {
    for (int k = 0; k < d; ++k) {
      const double jitter = rng.uniform(-0.1, 0.1);
      genome[static_cast<std::size_t>(c + index * d + k)] = std::clamp(
          design_scores[static_cast<std::size_t>(k)] + jitter, 0.0, 1.0);
    }
  }
  return genome;
}

}  // namespace mars::core
