#include "mars/core/first_level.h"

#include <algorithm>

#include "mars/ga/operators.h"
#include "mars/util/error.h"

namespace mars::core {

FirstLevelCodec::FirstLevelCodec(const Problem& problem,
                                 std::vector<topology::AccSetCandidate> candidates)
    : problem_(&problem), candidates_(std::move(candidates)) {
  MARS_CHECK_ARG(!candidates_.empty(), "no AccSet candidates");
}

int FirstLevelCodec::genome_size() const {
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  return c * (2 + d);
}

int FirstLevelCodec::candidate_index(topology::AccMask mask) const {
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].mask == mask) return static_cast<int>(i);
  }
  MARS_THROW("mask " << topology::mask_to_string(mask)
                     << " is not a candidate AccSet");
}

Skeleton FirstLevelCodec::decode(const ga::Genome& genome) const {
  MARS_CHECK_ARG(static_cast<int>(genome.size()) == genome_size(),
                 "genome size mismatch");
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  const double* prio = genome.data();
  const double* design_genes = genome.data() + c;
  const double* share_genes = genome.data() + c + c * d;

  const std::vector<topology::AccMask> partition = topology::decode_partition(
      *problem_->topo, candidates_,
      std::vector<double>(prio, prio + c));

  // Shares: proportional layer allocation with a small floor so a set only
  // drops out when its gene is pushed firmly to zero.
  const int num_layers = problem_->spine->size();
  std::vector<double> shares;
  shares.reserve(partition.size());
  double share_sum = 0.0;
  for (topology::AccMask mask : partition) {
    const int index = candidate_index(mask);
    const double share = std::max(0.0, share_genes[index]);
    shares.push_back(share);
    share_sum += share;
  }
  if (share_sum <= 0.0) {
    shares.assign(partition.size(), 1.0);
    share_sum = static_cast<double>(partition.size());
  }

  // Largest-remainder rounding to exactly num_layers.
  std::vector<int> counts(partition.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  int allocated = 0;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    const double exact = num_layers * shares[i] / share_sum;
    counts[i] = static_cast<int>(exact);
    allocated += counts[i];
    remainders.emplace_back(exact - counts[i], i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int extra = num_layers - allocated; extra > 0; --extra) {
    counts[remainders[static_cast<std::size_t>(num_layers - allocated - extra) %
                      remainders.size()]
               .second] += 1;
  }

  Skeleton skeleton;
  int cursor = 0;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    if (counts[i] == 0) continue;  // unused set: accelerators idle
    LayerAssignment set;
    set.accs = partition[i];
    set.begin = cursor;
    set.end = cursor + counts[i];
    cursor = set.end;
    if (problem_->adaptive) {
      const int index = candidate_index(partition[i]);
      int best = 0;
      for (int k = 1; k < d; ++k) {
        if (design_genes[index * d + k] > design_genes[index * d + best]) best = k;
      }
      set.design = best;
    }
    skeleton.sets.push_back(set);
  }
  MARS_CHECK(cursor == num_layers && !skeleton.sets.empty(),
             "layer allocation failed to cover the spine");
  return skeleton;
}

ga::Genome FirstLevelCodec::encode(const Skeleton& skeleton,
                                   const std::vector<double>& design_scores) const {
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  MARS_CHECK_ARG(static_cast<int>(design_scores.size()) == d,
                 "one score per design required");
  ga::Genome genome(static_cast<std::size_t>(genome_size()), 0.0);

  // Candidate priorities: chosen sets get descending high priorities so the
  // greedy partition decoder picks exactly them.
  double priority = 1.0;
  const int num_layers = problem_->spine->size();
  for (const LayerAssignment& set : skeleton.sets) {
    const int index = candidate_index(set.accs);
    genome[static_cast<std::size_t>(index)] = priority;
    priority -= 0.05;

    for (int k = 0; k < d; ++k) {
      genome[static_cast<std::size_t>(c + index * d + k)] =
          0.5 * design_scores[static_cast<std::size_t>(k)];
    }
    if (problem_->adaptive) {
      MARS_CHECK_ARG(set.design >= 0 && set.design < d, "skeleton missing design");
      genome[static_cast<std::size_t>(c + index * d + set.design)] = 1.0;
    }
    genome[static_cast<std::size_t>(c + c * d + index)] =
        static_cast<double>(set.num_layers()) / num_layers;
  }
  return genome;
}

ga::Genome FirstLevelCodec::profiled_random(
    const std::vector<double>& design_scores, Rng& rng) const {
  const int c = static_cast<int>(candidates_.size());
  const int d = problem_->designs->size();
  MARS_CHECK_ARG(static_cast<int>(design_scores.size()) == d,
                 "one score per design required");
  ga::Genome genome = ga::random_genome(genome_size(), 0.0, 1.0, rng);
  // The paper initialises design genes from normalised profiled
  // performance; jitter keeps the population diverse.
  for (int index = 0; index < c; ++index) {
    for (int k = 0; k < d; ++k) {
      const double jitter = rng.uniform(-0.1, 0.1);
      genome[static_cast<std::size_t>(c + index * d + k)] = std::clamp(
          design_scores[static_cast<std::size_t>(k)] + jitter, 0.0, 1.0);
    }
  }
  return genome;
}

}  // namespace mars::core
