#include "mars/core/mars.h"

#include <algorithm>
#include <memory>

#include "mars/util/error.h"
#include "mars/util/logging.h"
#include "mars/util/worker_pool.h"

namespace mars::core {

void validate_config(const MarsConfig& config) {
  ga::validate_config(config.first_ga);
  ga::validate_config(config.second.ga);
  MARS_CHECK_ARG(config.second.max_es_dims >= 1,
                 "second-level max_es_dims must be >= 1, got "
                     << config.second.max_es_dims);
  MARS_CHECK_ARG(config.threads >= 1,
                 "threads must be >= 1, got " << config.threads);
}

Mars::Mars(const Problem& problem, MarsConfig config)
    : problem_(&problem),
      config_(config),
      space_(problem, {config.second, config.heuristic_candidates}) {
  validate_config(config);
}

MarsResult Mars::search(const ga::StopFn& stop) {
  Rng rng(config_.seed);
  const std::vector<double> scores = space_.design_scores();
  const FirstLevelCodec& codec = space_.codec();
  // Shared fitness pool for either GA level arrangement. threads == 1
  // stays on the serial single-genome path (no pool, no batching).
  std::unique_ptr<util::WorkerPool> pool;
  if (config_.threads > 1) {
    pool = std::make_unique<util::WorkerPool>(config_.threads);
  }

  MarsResult result;
  if (config_.two_level) {
    ga::GaEngine engine(config_.first_ga, codec.genome_size());
    std::vector<ga::Genome> seeds;
    if (config_.seed_baseline) {
      seeds.push_back(codec.encode(space_.baseline(), scores));
    }
    if (config_.profiled_init) {
      const int extra = std::max(1, config_.first_ga.population / 4);
      for (int i = 0; i < extra; ++i) {
        seeds.push_back(codec.profiled_random(scores, rng));
      }
    }
    auto fitness = [&](const ga::Genome& genome) {
      return space_.fitness(codec.decode(genome));
    };
    // Cohorts always go through the batch/delta pair (pool may be null —
    // the batch paths run the identical code single-threaded): initial
    // populations seed SkeletonSpace's per-genome records, offspring
    // arrive as moves priced incrementally against those records. Both
    // paths return exactly the serial values, so the search itself is
    // byte-identical at any thread count.
    ga::BatchFitnessFn batch = [&](const std::vector<ga::Genome>& genomes) {
      return space_.fitness_batch(genomes, pool.get());
    };
    ga::DeltaBatchFitnessFn delta =
        [&](const std::vector<ga::Genome>& parents,
            const std::vector<ga::Genome>& children,
            const std::vector<ga::GenomeDelta>& deltas) {
          return space_.fitness_delta_batch(parents, children, deltas,
                                            pool.get());
        };
    result.first_level =
        engine.minimize(fitness, rng, seeds, stop, batch, delta);

    Skeleton winner = codec.decode(result.first_level.best);
    result.mapping = space_.complete(winner);

    // Skip the polish pass when the caller's budget is already spent —
    // a cancelled search should return as soon as it has a valid mapping.
    const bool budget_spent =
        stop && stop(result.first_level.evaluations,
                     result.first_level.best_fitness);
    if (config_.refine_winner && !budget_spent) {
      space_.polish(result.mapping, rng);
    }
  } else {
    // Flat single-level ablation: one genome decides sets AND strategies.
    const int skeleton_genes = codec.genome_size();
    const int strategy_genes =
        SecondLevelSearch::kGenesPerLayer * problem_->spine->size();
    ga::GaEngine engine(config_.first_ga, skeleton_genes + strategy_genes);

    auto decode_flat = [&](const ga::Genome& genome) {
      const ga::Genome head(genome.begin(), genome.begin() + skeleton_genes);
      const Skeleton skeleton = codec.decode(head);
      Mapping mapping;
      for (const LayerAssignment& set : skeleton.sets) {
        LayerAssignment full = set;
        for (int l = set.begin; l < set.end; ++l) {
          const double* genes =
              genome.data() + skeleton_genes +
              static_cast<std::size_t>(l) * SecondLevelSearch::kGenesPerLayer;
          full.strategies.push_back(space_.second().decode_layer(
              problem_->spine->node(l).shape, set.num_accs(), genes));
        }
        mapping.sets.push_back(std::move(full));
      }
      return mapping;
    };
    const AnalyticalCostModel& analytical = space_.evaluator().analytical();
    auto fitness = [&](const ga::Genome& genome) {
      const Mapping mapping = decode_flat(genome);
      std::vector<Seconds> latencies;
      latencies.reserve(mapping.sets.size());
      for (const LayerAssignment& set : mapping.sets) {
        latencies.push_back(analytical.set_cost(set).penalized);
      }
      return analytical.aggregate_makespan(mapping.sets, latencies).count();
    };
    // Flat fitness touches no shared mutable state (no memo cache), so
    // the batch is a plain parallel map over the cohort.
    ga::BatchFitnessFn batch;
    if (pool) {
      batch = [&](const std::vector<ga::Genome>& genomes) {
        std::vector<double> values(genomes.size());
        pool->parallel_for(genomes.size(),
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               values[i] = fitness(genomes[i]);
                             }
                           });
        return values;
      };
    }
    result.first_level = engine.minimize(fitness, rng, {}, stop, batch);
    result.mapping = decode_flat(result.first_level.best);
  }

  result.summary = space_.evaluator().evaluate(result.mapping);
  result.second_level_hits = space_.cache_hits();
  result.second_level_misses = space_.cache_misses();
  MARS_INFO << "MARS search done: simulated "
            << result.summary.simulated.millis() << " ms, "
            << result.mapping.sets.size() << " sets, cache "
            << result.second_level_hits << '/'
            << (result.second_level_hits + result.second_level_misses);
  return result;
}

}  // namespace mars::core
