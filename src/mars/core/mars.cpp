#include "mars/core/mars.h"

#include <algorithm>

#include "mars/core/baseline.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::core {
namespace {

std::vector<topology::AccSetCandidate> trivial_candidates(
    const topology::Topology& topo) {
  std::vector<topology::AccSetCandidate> out;
  for (topology::AccMask component :
       topo.components_above(topo.full_mask(), Bandwidth(0.0))) {
    out.push_back({component, topo.min_internal_bandwidth(component)});
  }
  for (topology::AccId id = 0; id < topo.size(); ++id) {
    const topology::AccMask mask = topology::mask_of(id);
    if (std::none_of(out.begin(), out.end(), [&](const auto& c) {
          return c.mask == mask;
        })) {
      out.push_back({mask, topo.min_internal_bandwidth(mask)});
    }
  }
  return out;
}

}  // namespace

Mars::Mars(const Problem& problem, MarsConfig config)
    : problem_(&problem),
      config_(config),
      profile_(*problem.designs, *problem.spine),
      candidates_(config.heuristic_candidates
                      ? topology::accset_candidates(*problem.topo)
                      : trivial_candidates(*problem.topo)),
      codec_(problem, candidates_),
      second_(problem, config.second),
      evaluator_(problem) {}

const SecondLevelResult& Mars::second_level_for(const LayerAssignment& skeleton) {
  const CacheKey key{skeleton.begin, skeleton.end, skeleton.accs, skeleton.design};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  return cache_.emplace(key, second_.greedy(skeleton)).first->second;
}

double Mars::skeleton_fitness(const Skeleton& skeleton) {
  // Per-set penalized latencies aggregated over the set dependency DAG
  // (models branch overlap for multi-stream workloads).
  std::vector<Seconds> latencies;
  latencies.reserve(skeleton.sets.size());
  for (const LayerAssignment& set : skeleton.sets) {
    latencies.push_back(second_level_for(set).cost.penalized);
  }
  return evaluator_.analytical()
      .aggregate_makespan(skeleton.sets, latencies)
      .count();
}

Mapping Mars::strategies_for(const Skeleton& skeleton) {
  Mapping mapping;
  for (const LayerAssignment& set : skeleton.sets) {
    LayerAssignment full = set;
    full.strategies = second_level_for(set).strategies;
    mapping.sets.push_back(std::move(full));
  }
  return mapping;
}

Skeleton Mars::baseline_skeleton() const {
  return core::baseline_skeleton(*problem_, profile_);
}

MarsResult Mars::search() {
  Rng rng(config_.seed);
  const std::vector<double> scores = profile_.design_scores();

  MarsResult result;
  if (config_.two_level) {
    ga::GaEngine engine(config_.first_ga, codec_.genome_size());
    std::vector<ga::Genome> seeds;
    if (config_.seed_baseline) {
      seeds.push_back(codec_.encode(baseline_skeleton(), scores));
    }
    if (config_.profiled_init) {
      const int extra = std::max(1, config_.first_ga.population / 4);
      for (int i = 0; i < extra; ++i) {
        seeds.push_back(codec_.profiled_random(scores, rng));
      }
    }
    auto fitness = [&](const ga::Genome& genome) {
      return skeleton_fitness(codec_.decode(genome));
    };
    result.first_level = engine.minimize(fitness, rng, seeds);

    Skeleton winner = codec_.decode(result.first_level.best);
    result.mapping = strategies_for(winner);

    if (config_.refine_winner) {
      for (LayerAssignment& set : result.mapping.sets) {
        LayerAssignment skeleton = set;
        skeleton.strategies.clear();
        Rng child = rng.fork();
        const SecondLevelResult refined =
            second_.refine(skeleton, child, &set.strategies);
        // Keep the better of greedy and refined (the GA is seeded with the
        // greedy solution, so this only guards decode drift).
        LayerAssignment trial = set;
        trial.strategies = refined.strategies;
        if (evaluator_.analytical().set_cost(trial).penalized <=
            evaluator_.analytical().set_cost(set).penalized) {
          set.strategies = refined.strategies;
        }
      }
    }
  } else {
    // Flat single-level ablation: one genome decides sets AND strategies.
    const int skeleton_genes = codec_.genome_size();
    const int strategy_genes =
        SecondLevelSearch::kGenesPerLayer * problem_->spine->size();
    ga::GaEngine engine(config_.first_ga, skeleton_genes + strategy_genes);

    auto decode_flat = [&](const ga::Genome& genome) {
      const ga::Genome head(genome.begin(), genome.begin() + skeleton_genes);
      const Skeleton skeleton = codec_.decode(head);
      Mapping mapping;
      for (const LayerAssignment& set : skeleton.sets) {
        LayerAssignment full = set;
        for (int l = set.begin; l < set.end; ++l) {
          const double* genes =
              genome.data() + skeleton_genes +
              static_cast<std::size_t>(l) * SecondLevelSearch::kGenesPerLayer;
          full.strategies.push_back(second_.decode_layer(
              problem_->spine->node(l).shape, set.num_accs(), genes));
        }
        mapping.sets.push_back(std::move(full));
      }
      return mapping;
    };
    auto fitness = [&](const ga::Genome& genome) {
      const Mapping mapping = decode_flat(genome);
      std::vector<Seconds> latencies;
      latencies.reserve(mapping.sets.size());
      for (const LayerAssignment& set : mapping.sets) {
        latencies.push_back(evaluator_.analytical().set_cost(set).penalized);
      }
      return evaluator_.analytical()
          .aggregate_makespan(mapping.sets, latencies)
          .count();
    };
    result.first_level = engine.minimize(fitness, rng, {});
    result.mapping = decode_flat(result.first_level.best);
  }

  result.summary = evaluator_.evaluate(result.mapping);
  result.second_level_hits = cache_hits_;
  result.second_level_misses = cache_misses_;
  MARS_INFO << "MARS search done: simulated "
            << result.summary.simulated.millis() << " ms, "
            << result.mapping.sets.size() << " sets, cache " << cache_hits_
            << '/' << (cache_hits_ + cache_misses_);
  return result;
}

}  // namespace mars::core
