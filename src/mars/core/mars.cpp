#include "mars/core/mars.h"

#include <algorithm>

#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::core {

void validate_config(const MarsConfig& config) {
  ga::validate_config(config.first_ga);
  ga::validate_config(config.second.ga);
  MARS_CHECK_ARG(config.second.max_es_dims >= 1,
                 "second-level max_es_dims must be >= 1, got "
                     << config.second.max_es_dims);
}

Mars::Mars(const Problem& problem, MarsConfig config)
    : problem_(&problem),
      config_(config),
      space_(problem, {config.second, config.heuristic_candidates}) {
  validate_config(config);
}

MarsResult Mars::search(const ga::StopFn& stop) {
  Rng rng(config_.seed);
  const std::vector<double> scores = space_.design_scores();
  const FirstLevelCodec& codec = space_.codec();

  MarsResult result;
  if (config_.two_level) {
    ga::GaEngine engine(config_.first_ga, codec.genome_size());
    std::vector<ga::Genome> seeds;
    if (config_.seed_baseline) {
      seeds.push_back(codec.encode(space_.baseline(), scores));
    }
    if (config_.profiled_init) {
      const int extra = std::max(1, config_.first_ga.population / 4);
      for (int i = 0; i < extra; ++i) {
        seeds.push_back(codec.profiled_random(scores, rng));
      }
    }
    auto fitness = [&](const ga::Genome& genome) {
      return space_.fitness(codec.decode(genome));
    };
    result.first_level = engine.minimize(fitness, rng, seeds, stop);

    Skeleton winner = codec.decode(result.first_level.best);
    result.mapping = space_.complete(winner);

    // Skip the polish pass when the caller's budget is already spent —
    // a cancelled search should return as soon as it has a valid mapping.
    const bool budget_spent =
        stop && stop(result.first_level.evaluations,
                     result.first_level.best_fitness);
    if (config_.refine_winner && !budget_spent) {
      space_.polish(result.mapping, rng);
    }
  } else {
    // Flat single-level ablation: one genome decides sets AND strategies.
    const int skeleton_genes = codec.genome_size();
    const int strategy_genes =
        SecondLevelSearch::kGenesPerLayer * problem_->spine->size();
    ga::GaEngine engine(config_.first_ga, skeleton_genes + strategy_genes);

    auto decode_flat = [&](const ga::Genome& genome) {
      const ga::Genome head(genome.begin(), genome.begin() + skeleton_genes);
      const Skeleton skeleton = codec.decode(head);
      Mapping mapping;
      for (const LayerAssignment& set : skeleton.sets) {
        LayerAssignment full = set;
        for (int l = set.begin; l < set.end; ++l) {
          const double* genes =
              genome.data() + skeleton_genes +
              static_cast<std::size_t>(l) * SecondLevelSearch::kGenesPerLayer;
          full.strategies.push_back(space_.second().decode_layer(
              problem_->spine->node(l).shape, set.num_accs(), genes));
        }
        mapping.sets.push_back(std::move(full));
      }
      return mapping;
    };
    const AnalyticalCostModel& analytical = space_.evaluator().analytical();
    auto fitness = [&](const ga::Genome& genome) {
      const Mapping mapping = decode_flat(genome);
      std::vector<Seconds> latencies;
      latencies.reserve(mapping.sets.size());
      for (const LayerAssignment& set : mapping.sets) {
        latencies.push_back(analytical.set_cost(set).penalized);
      }
      return analytical.aggregate_makespan(mapping.sets, latencies).count();
    };
    result.first_level = engine.minimize(fitness, rng, {}, stop);
    result.mapping = decode_flat(result.first_level.best);
  }

  result.summary = space_.evaluator().evaluate(result.mapping);
  result.second_level_hits = space_.cache_hits();
  result.second_level_misses = space_.cache_misses();
  MARS_INFO << "MARS search done: simulated "
            << result.summary.simulated.millis() << " ms, "
            << result.mapping.sets.size() << " sets, cache "
            << result.second_level_hits << '/'
            << (result.second_level_hits + result.second_level_misses);
  return result;
}

}  // namespace mars::core
