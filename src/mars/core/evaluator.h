// Mapping evaluation through the event-driven simulator.
//
// Lowers a Mapping into a sim::TaskGraph (compute phases per accelerator,
// SS ring shifts, per-subgroup All-Reduce, reshard flows, inter-set and
// host transfers) and replays it with link contention. The simulated
// makespan is the number every benchmark reports; the analytical breakdown
// rides along for the GA and for diagnostics.
//
// Ownership: the evaluator keeps a non-owning pointer to the Problem (and
// through it the spine/topology/registry); the caller keeps them alive for
// the evaluator's lifetime. Evaluation is const and stateless, so one
// evaluator may be shared across searches. Units follow util/units.h:
// every latency is Seconds, every size Bytes — never raw doubles.
#pragma once

#include "mars/core/cost_model.h"
#include "mars/sim/executor.h"
#include "mars/sim/task_graph.h"

namespace mars::core {

class MappingEvaluator {
 public:
  explicit MappingEvaluator(const Problem& problem);

  /// Analytical breakdown + simulated makespan.
  [[nodiscard]] EvaluationSummary evaluate(const Mapping& mapping) const;

  /// The lowered task graph (exposed for tests and trace export).
  [[nodiscard]] sim::TaskGraph build_task_graph(const Mapping& mapping) const;

  struct SimOutput {
    sim::TaskGraph graph;
    sim::ExecutionResult result;
  };
  [[nodiscard]] SimOutput simulate(const Mapping& mapping) const;

  /// Extension beyond the paper's single-inference formulation: stream
  /// `batch` inferences through the mapping. Consecutive images pipeline
  /// across accelerator sets naturally (resource contention sequences
  /// work within a set; different sets process different images
  /// concurrently).
  struct ThroughputResult {
    Seconds makespan{};         // for the whole batch
    double images_per_second = 0.0;
    /// batch * single-image latency / makespan: >1 when set-level
    /// pipelining overlaps images.
    double pipeline_speedup = 1.0;
  };
  [[nodiscard]] ThroughputResult evaluate_throughput(const Mapping& mapping,
                                                     int batch) const;

  [[nodiscard]] const AnalyticalCostModel& analytical() const { return model_; }

 private:
  void append_inference(sim::TaskGraph& tg, const Mapping& mapping,
                        const std::string& prefix) const;

  const Problem* problem_;
  AnalyticalCostModel model_;
};

}  // namespace mars::core
