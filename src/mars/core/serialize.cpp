#include "mars/core/serialize.h"

namespace mars::core {

JsonValue to_json(const parallel::Strategy& strategy) {
  JsonValue es = JsonValue::array();
  for (const parallel::DimSplit& split : strategy.es()) {
    es.push(JsonValue::object()
                .set("dim", JsonValue::string(parallel::to_string(split.dim)))
                .set("ways", JsonValue::integer(split.ways)));
  }
  JsonValue out = JsonValue::object();
  out.set("es", std::move(es));
  out.set("ss", strategy.has_ss()
                    ? JsonValue::string(parallel::to_string(*strategy.ss()))
                    : JsonValue::string(""));
  return out;
}

JsonValue to_json(const Mapping& mapping, const graph::ConvSpine& spine,
                  const accel::DesignRegistry& designs, bool adaptive) {
  JsonValue sets = JsonValue::array();
  for (const LayerAssignment& set : mapping.sets) {
    JsonValue members = JsonValue::array();
    for (topology::AccId acc : topology::mask_members(set.accs)) {
      members.push(JsonValue::integer(acc));
    }
    JsonValue layers = JsonValue::array();
    for (int l = set.begin; l < set.end; ++l) {
      layers.push(
          JsonValue::object()
              .set("index", JsonValue::integer(l))
              .set("name", JsonValue::string(spine.node(l).name))
              .set("strategy", to_json(set.strategies[static_cast<std::size_t>(
                                   l - set.begin)])));
    }
    JsonValue entry = JsonValue::object();
    entry.set("accelerators", std::move(members));
    entry.set("design", adaptive
                            ? JsonValue::string(designs.design(set.design).name())
                            : JsonValue::string("fixed"));
    entry.set("begin", JsonValue::integer(set.begin));
    entry.set("end", JsonValue::integer(set.end));
    entry.set("layers", std::move(layers));
    sets.push(std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("model", JsonValue::string(spine.model_name()));
  out.set("num_layers", JsonValue::integer(spine.size()));
  out.set("sets", std::move(sets));
  return out;
}

JsonValue to_json(const EvaluationSummary& summary) {
  return JsonValue::object()
      .set("simulated_ms", JsonValue::number(summary.simulated.millis()))
      .set("analytic_makespan_ms",
           JsonValue::number(summary.analytic_makespan.millis()))
      .set("compute_ms", JsonValue::number(summary.analytic.compute.millis()))
      .set("intra_set_ms", JsonValue::number(summary.analytic.intra_set.millis()))
      .set("inter_set_ms", JsonValue::number(summary.analytic.inter_set.millis()))
      .set("host_io_ms", JsonValue::number(summary.analytic.host_io.millis()))
      .set("memory_ok", JsonValue::boolean(summary.memory_ok))
      .set("worst_set_footprint_mib",
           JsonValue::number(summary.worst_set_footprint.mib()));
}

}  // namespace mars::core
