#include "mars/core/serialize.h"

#include <utility>

#include "mars/util/error.h"

namespace mars::core {

JsonValue to_json(const parallel::Strategy& strategy) {
  JsonValue es = JsonValue::array();
  for (const parallel::DimSplit& split : strategy.es()) {
    es.push(JsonValue::object()
                .set("dim", JsonValue::string(parallel::to_string(split.dim)))
                .set("ways", JsonValue::integer(split.ways)));
  }
  JsonValue out = JsonValue::object();
  out.set("es", std::move(es));
  out.set("ss", strategy.has_ss()
                    ? JsonValue::string(parallel::to_string(*strategy.ss()))
                    : JsonValue::string(""));
  return out;
}

JsonValue to_json(const Mapping& mapping, const graph::ConvSpine& spine,
                  const accel::DesignRegistry& designs, bool adaptive) {
  JsonValue sets = JsonValue::array();
  for (const LayerAssignment& set : mapping.sets) {
    JsonValue members = JsonValue::array();
    for (topology::AccId acc : topology::mask_members(set.accs)) {
      members.push(JsonValue::integer(acc));
    }
    JsonValue layers = JsonValue::array();
    for (int l = set.begin; l < set.end; ++l) {
      layers.push(
          JsonValue::object()
              .set("index", JsonValue::integer(l))
              .set("name", JsonValue::string(spine.node(l).name))
              .set("strategy", to_json(set.strategies[static_cast<std::size_t>(
                                   l - set.begin)])));
    }
    JsonValue entry = JsonValue::object();
    entry.set("accelerators", std::move(members));
    entry.set("design", adaptive
                            ? JsonValue::string(designs.design(set.design).name())
                            : JsonValue::string("fixed"));
    entry.set("begin", JsonValue::integer(set.begin));
    entry.set("end", JsonValue::integer(set.end));
    entry.set("layers", std::move(layers));
    sets.push(std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("model", JsonValue::string(spine.model_name()));
  out.set("num_layers", JsonValue::integer(spine.size()));
  out.set("sets", std::move(sets));
  return out;
}

parallel::Strategy strategy_from_json(const JsonValue& json) {
  std::vector<parallel::DimSplit> es;
  const JsonValue& es_json = json.get("es");
  MARS_CHECK_ARG(es_json.is_array(), "strategy 'es' must be an array");
  for (std::size_t i = 0; i < es_json.size(); ++i) {
    const JsonValue& split = es_json.at(i);
    const std::string& dim_name = split.get("dim").as_string();
    const std::optional<parallel::Dim> dim = parallel::dim_from_string(dim_name);
    MARS_CHECK_ARG(dim.has_value(), "unknown ES dim '" << dim_name << "'");
    es.push_back({*dim, static_cast<int>(split.get("ways").as_integer())});
  }
  const std::string& ss_name = json.get("ss").as_string();
  std::optional<parallel::Dim> ss;
  if (!ss_name.empty()) {
    ss = parallel::dim_from_string(ss_name);
    MARS_CHECK_ARG(ss.has_value(), "unknown SS dim '" << ss_name << "'");
  }
  return parallel::Strategy(std::move(es), ss);
}

Mapping mapping_from_json(const JsonValue& json, const graph::ConvSpine& spine,
                          const topology::Topology& topo,
                          const accel::DesignRegistry& designs, bool adaptive) {
  const std::string& model = json.get("model").as_string();
  MARS_CHECK_ARG(model == spine.model_name(),
                 "mapping is for model '" << model << "', expected '"
                                          << spine.model_name() << "'");
  MARS_CHECK_ARG(json.get("num_layers").as_integer() == spine.size(),
                 "mapping covers " << json.get("num_layers").as_integer()
                                   << " layers, spine has " << spine.size());

  Mapping mapping;
  const JsonValue& sets = json.get("sets");
  MARS_CHECK_ARG(sets.is_array(), "mapping 'sets' must be an array");
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const JsonValue& entry = sets.at(s);
    LayerAssignment set;
    const JsonValue& members = entry.get("accelerators");
    MARS_CHECK_ARG(members.is_array(), "set 'accelerators' must be an array");
    for (std::size_t i = 0; i < members.size(); ++i) {
      const long long acc = members.at(i).as_integer();
      MARS_CHECK_ARG(acc >= 0 && acc < topo.size(),
                     "set member " << acc << " outside the topology");
      set.accs |= topology::mask_of(static_cast<topology::AccId>(acc));
    }
    const std::string& design = entry.get("design").as_string();
    if (adaptive) {
      set.design = designs.find(design);
      MARS_CHECK_ARG(set.design != accel::kInvalidDesign,
                     "unknown design '" << design << "' in mapping");
    } else {
      MARS_CHECK_ARG(design == "fixed",
                     "fixed-design mapping names a design '" << design << "'");
    }
    set.begin = static_cast<int>(entry.get("begin").as_integer());
    set.end = static_cast<int>(entry.get("end").as_integer());
    const JsonValue& layers = entry.get("layers");
    MARS_CHECK_ARG(static_cast<int>(layers.size()) == set.num_layers(),
                   "set [" << set.begin << ", " << set.end << ") carries "
                           << layers.size() << " layer strategies");
    for (std::size_t l = 0; l < layers.size(); ++l) {
      set.strategies.push_back(strategy_from_json(layers.at(l).get("strategy")));
    }
    mapping.sets.push_back(std::move(set));
  }
  mapping.validate(spine, topo, designs, adaptive);
  return mapping;
}

JsonValue to_json(const EvaluationSummary& summary) {
  return JsonValue::object()
      .set("simulated_ms", JsonValue::number(summary.simulated.millis()))
      .set("analytic_makespan_ms",
           JsonValue::number(summary.analytic_makespan.millis()))
      .set("compute_ms", JsonValue::number(summary.analytic.compute.millis()))
      .set("intra_set_ms", JsonValue::number(summary.analytic.intra_set.millis()))
      .set("inter_set_ms", JsonValue::number(summary.analytic.inter_set.millis()))
      .set("host_io_ms", JsonValue::number(summary.analytic.host_io.millis()))
      .set("energy_mj", JsonValue::number(summary.energy.millijoules()))
      .set("memory_ok", JsonValue::boolean(summary.memory_ok))
      .set("worst_set_footprint_mib",
           JsonValue::number(summary.worst_set_footprint.mib()));
}

}  // namespace mars::core
