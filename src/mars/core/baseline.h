// Baseline mapper (Section VI-A): the computation-prioritised algorithm of
// Herald extended with parallelism strategies.
//
//  * Fixed two accelerator sets = the two topology groups (direct-link
//    connected components; a single component is bisected).
//  * Half of the layers to each set, in order.
//  * Each set configured with the design minimising its summed profiled
//    computation latency.
//  * Every layer partitioned with ES along its two longest dimensions
//    (no shared shards).
#pragma once

#include "mars/accel/profiler.h"
#include "mars/core/cost_model.h"
#include "mars/core/first_level.h"

namespace mars::core {

/// The baseline's sets/designs/ranges without strategies.
[[nodiscard]] Skeleton baseline_skeleton(const Problem& problem,
                                         const accel::ProfileMatrix& profile);

/// ES along the two longest dims for one layer on p accelerators.
[[nodiscard]] parallel::Strategy baseline_strategy(const graph::ConvShape& shape,
                                                   int p);

/// The complete baseline mapping (skeleton + per-layer strategies).
[[nodiscard]] Mapping baseline_mapping(const Problem& problem,
                                       const accel::ProfileMatrix& profile);

}  // namespace mars::core
