#include "mars/core/cost_model.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "mars/parallel/comm_pattern.h"
#include "mars/parallel/memory.h"
#include "mars/util/error.h"

namespace mars::core {
namespace {

// Infeasible mappings stay finite but strongly dominated so the GA can
// descend back into the feasible region.
constexpr double kMemoryPenaltyFactor = 10.0;

}  // namespace

void Problem::validate() const {
  MARS_CHECK_ARG(spine != nullptr, "Problem.spine is null");
  MARS_CHECK_ARG(topo != nullptr, "Problem.topo is null");
  MARS_CHECK_ARG(designs != nullptr, "Problem.designs is null");
  MARS_CHECK_ARG(designs->size() > 0, "design menu is empty");
  topo->validate();
  MARS_CHECK_ARG((placement & ~topo->full_mask()) == 0,
                 "Problem.placement reaches outside the topology");
  if (!adaptive) {
    for (topology::AccId acc = 0; acc < topo->size(); ++acc) {
      const int fixed = topo->accelerator(acc).fixed_design;
      MARS_CHECK_ARG(fixed >= 0 && fixed < designs->size(),
                     "fixed-design mode but accelerator "
                         << acc << " has fixed_design " << fixed);
    }
  }
}

AnalyticalCostModel::AnalyticalCostModel(const Problem& problem)
    : problem_(&problem) {
  problem.validate();
  for (const graph::SpineEdge& edge : problem.spine->edges()) {
    if (edge.producer < 0) {
      input_consumer_.push_back(edge.consumer);
      input_bytes_.push_back(edge.bytes.count());
    } else {
      edge_producer_.push_back(edge.producer);
      edge_consumer_.push_back(edge.consumer);
      edge_bytes_.push_back(edge.bytes.count());
    }
  }
}

Seconds AnalyticalCostModel::phase_compute_time(const LayerAssignment& set,
                                                const graph::ConvShape& local) const {
  // Allocation-free member sweep (this runs per strategy option inside the
  // greedy second level): adaptive sets have one configured design; fixed
  // sets take the slowest member, visited in ascending accelerator order —
  // the same order member_designs() yields.
  if (problem_->adaptive) {
    return problem_->designs->design(set.design)
        .conv_latency(local, problem_->spine->dtype());
  }
  Seconds worst(0.0);
  for (topology::AccMask rest = set.accs; rest != 0; rest &= rest - 1) {
    const auto acc = static_cast<topology::AccId>(std::countr_zero(rest));
    const accel::AcceleratorDesign& design =
        problem_->designs->design(problem_->topo->accelerator(acc).fixed_design);
    worst = std::max(worst,
                     design.conv_latency(local, problem_->spine->dtype()));
  }
  return worst;
}

Seconds AnalyticalCostModel::fused_time(const LayerAssignment& set, int layer,
                                        int p) const {
  const Bytes traffic =
      problem_->spine->node(layer).fused_traffic / static_cast<double>(p);
  if (problem_->adaptive) {
    const accel::AcceleratorDesign& design =
        problem_->designs->design(set.design);
    return design.frequency().time_for(design.dram_cycles(traffic));
  }
  Seconds worst(0.0);
  for (topology::AccMask rest = set.accs; rest != 0; rest &= rest - 1) {
    const auto acc = static_cast<topology::AccId>(std::countr_zero(rest));
    const accel::AcceleratorDesign& design =
        problem_->designs->design(problem_->topo->accelerator(acc).fixed_design);
    worst = std::max(worst,
                     design.frequency().time_for(design.dram_cycles(traffic)));
  }
  return worst;
}

LayerCost AnalyticalCostModel::layer_cost(
    const LayerAssignment& set, int layer, const parallel::Strategy& strategy,
    const std::optional<parallel::ActivationSharding>& upstream) const {
  const graph::ConvSpine& spine = *problem_->spine;
  const int p = set.num_accs();
  const graph::ConvShape& shape = spine.node(layer).shape;
  const Seconds hop_latency = problem_->sim_params.link_latency;

  LayerCost cost;
  cost.plan = parallel::make_plan(shape, spine.dtype(), strategy, p);
  const parallel::ShardingPlan& plan = cost.plan;

  // Compute phases + fused-op DRAM traffic.
  cost.compute =
      phase_compute_time(set, plan.local) * static_cast<double>(plan.phases) +
      fused_time(set, layer, p);

  if (p > 1) {
    const Bandwidth internal_bw =
        problem_->topo->min_internal_bandwidth(set.accs);
    // SS ring hops between phases (non-overlapped, per Fig. 2(c)).
    if (plan.phases > 1) {
      const Seconds hop =
          internal_bw.transfer_time(plan.ring_hop_bytes) + hop_latency;
      cost.intra_set += hop * static_cast<double>(plan.phases - 1);
    }
    // All-Reduce of partial sums.
    if (plan.allreduce_group > 1) {
      const Bytes wire = parallel::allreduce_wire_bytes(plan.allreduce_bytes,
                                                        plan.allreduce_group);
      cost.intra_set +=
          internal_bw.transfer_time(wire) +
          hop_latency *
              static_cast<double>(parallel::allreduce_hops(plan.allreduce_group));
    }
    // Resharding from the previous layer's layout (or entry scatter for
    // the first layer — the activation lands on one member first).
    const Bytes in_bytes = shape.in_bytes(spine.dtype());
    Bytes moved{};
    if (upstream.has_value()) {
      moved = parallel::reshard_cost(*upstream, shape, plan.required, in_bytes, p,
                                     spine.dtype())
                  .moved;
    } else {
      moved = in_bytes * plan.required.fraction() * static_cast<double>(p - 1);
    }
    if (moved.count() > 0.0) {
      // Members redistribute concurrently over their own links.
      cost.intra_set +=
          internal_bw.transfer_time(moved / static_cast<double>(p)) + hop_latency;
    }
  }
  return cost;
}

SetCost AnalyticalCostModel::set_cost(const LayerAssignment& set) const {
  const graph::ConvSpine& spine = *problem_->spine;
  const topology::Topology& topo = *problem_->topo;
  const int p = set.num_accs();
  MARS_CHECK_ARG(p >= 1, "assignment with empty set");
  MARS_CHECK_ARG(static_cast<int>(set.strategies.size()) == set.num_layers(),
                 "strategy arity mismatch");

  SetCost cost;
  std::vector<parallel::ShardingPlan> plans;
  plans.reserve(static_cast<std::size_t>(set.num_layers()));

  std::optional<parallel::ActivationSharding> upstream;  // layout entering layer l
  for (int layer = set.begin; layer < set.end; ++layer) {
    const parallel::Strategy& strategy =
        set.strategies[static_cast<std::size_t>(layer - set.begin)];
    const LayerCost lc = layer_cost(set, layer, strategy, upstream);
    cost.latency.compute += lc.compute;
    cost.latency.intra_set += lc.intra_set;
    upstream = lc.plan.produced;
    plans.push_back(lc.plan);
  }

  // DRAM validity across the whole range.
  cost.footprint = parallel::footprint(spine, set.begin, set.end, plans);
  const Bytes dram = [&] {
    Bytes smallest(std::numeric_limits<double>::infinity());
    for (topology::AccId acc : topology::mask_members(set.accs)) {
      smallest = std::min(smallest, topo.accelerator(acc).dram);
    }
    return smallest;
  }();
  cost.memory_ok = cost.footprint.fits(dram);
  cost.penalized = cost.latency.total();
  if (!cost.memory_ok) {
    const double overflow = cost.footprint.total() / dram;
    cost.penalized =
        cost.penalized * (1.0 + kMemoryPenaltyFactor * std::max(0.0, overflow - 1.0) +
                          kMemoryPenaltyFactor);
  }
  return cost;
}

Joules AnalyticalCostModel::layer_energy(const LayerAssignment& set,
                                         int layer) const {
  const graph::ConvSpine& spine = *problem_->spine;
  const graph::ConvShape& shape = spine.node(layer).shape;
  const double macs = shape.macs();
  const Bytes fused = spine.node(layer).fused_traffic;

  // One design's share: `fraction` of the MACs, DRAM traffic and fused
  // bytes executed on `design`. conv_cycles().dram times the interface
  // width recovers the design-specific DRAM byte count (re-reads
  // included) without touching the protected traffic formula.
  const auto design_share = [&](const accel::AcceleratorDesign& design,
                                double fraction) {
    const Bytes traffic =
        Bytes(design.conv_cycles(shape, spine.dtype()).dram *
              design.dram_bytes_per_cycle()) +
        fused;
    return design.energy_per_mac() * (macs * fraction) +
           picojoules(kDramPicojoulesPerByte) * (traffic.count() * fraction);
  };

  if (problem_->adaptive) {
    return design_share(problem_->designs->design(set.design), 1.0);
  }
  Joules total{};
  const double share = 1.0 / static_cast<double>(set.num_accs());
  for (topology::AccMask rest = set.accs; rest != 0; rest &= rest - 1) {
    const auto acc = static_cast<topology::AccId>(std::countr_zero(rest));
    total += design_share(
        problem_->designs->design(problem_->topo->accelerator(acc).fixed_design),
        share);
  }
  return total;
}

Joules AnalyticalCostModel::mapping_energy(const Mapping& mapping) const {
  Joules total{};
  for (const LayerAssignment& set : mapping.sets) {
    for (int layer = set.begin; layer < set.end; ++layer) {
      total += layer_energy(set, layer);
    }
  }
  // Link energy: activations crossing set boundaries plus host I/O. Time
  // overlap does not reduce energy, so this sums bytes, not transfers.
  const std::vector<Bytes> crossing = inter_set_bytes(mapping.sets);
  const std::size_t s = mapping.sets.size();
  double link_bytes = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      if (i != j) link_bytes += crossing[i * s + j].count();  // diagonal = intra-set
    }
  }
  link_bytes += problem_->spine->input_bytes().count();
  link_bytes += problem_->spine->output_bytes().count();
  total += picojoules(kLinkPicojoulesPerByte) * link_bytes;
  return total;
}

Seconds AnalyticalCostModel::inter_set_time(topology::AccMask from,
                                            topology::AccMask to,
                                            Bytes bytes) const {
  if (bytes.count() <= 0.0) return Seconds(0.0);
  const topology::Topology& topo = *problem_->topo;
  const Seconds leg_latency = problem_->sim_params.link_latency;
  const Bandwidth direct = topo.best_link_between(from, to);
  if (direct.bits_per_second() > 0.0) {
    return direct.transfer_time(bytes) + leg_latency;
  }
  const Bandwidth up = topo.min_host_bandwidth(from);
  const Bandwidth down = topo.min_host_bandwidth(to);
  return up.transfer_time(bytes) + down.transfer_time(bytes) +
         leg_latency * 2.0 + problem_->sim_params.host_latency;
}

Bytes AnalyticalCostModel::bytes_between(const std::vector<LayerAssignment>& sets,
                                         std::size_t producer,
                                         std::size_t consumer) const {
  const LayerAssignment& from = sets[producer];
  const LayerAssignment& to = sets[consumer];
  Bytes total{};
  for (const graph::SpineEdge& edge : problem_->spine->edges()) {
    if (edge.producer >= from.begin && edge.producer < from.end &&
        edge.consumer >= to.begin && edge.consumer < to.end) {
      total += edge.bytes;
    }
  }
  return total;
}

std::vector<Bytes> AnalyticalCostModel::inter_set_bytes(
    const std::vector<LayerAssignment>& sets) const {
  const std::size_t s = sets.size();
  // Layer -> set index (-1 outside every set). Ranges are disjoint by the
  // Mapping/decode contract, so each edge lands in exactly one cell.
  std::vector<int> owner(static_cast<std::size_t>(problem_->spine->size()), -1);
  for (std::size_t i = 0; i < s; ++i) {
    for (int layer = sets[i].begin; layer < sets[i].end; ++layer) {
      owner[static_cast<std::size_t>(layer)] = static_cast<int>(i);
    }
  }
  std::vector<Bytes> matrix(s * s);
  for (std::size_t e = 0; e < edge_bytes_.size(); ++e) {
    const int from = owner[static_cast<std::size_t>(edge_producer_[e])];
    const int to = owner[static_cast<std::size_t>(edge_consumer_[e])];
    if (from < 0 || to < 0) continue;
    matrix[static_cast<std::size_t>(from) * s + static_cast<std::size_t>(to)] +=
        Bytes(edge_bytes_[e]);
  }
  return matrix;
}

Seconds AnalyticalCostModel::aggregate_makespan(
    const std::vector<LayerAssignment>& sets,
    const std::vector<Seconds>& set_latencies) const {
  MARS_CHECK_ARG(sets.size() == set_latencies.size(),
                 "one latency per set required");
  const graph::ConvSpine& spine = *problem_->spine;
  const std::size_t s = sets.size();

  // Host input feeds whichever sets consume network-input edges.
  std::vector<Seconds> start(s, Seconds(0.0));
  for (std::size_t e = 0; e < input_bytes_.size(); ++e) {
    for (std::size_t i = 0; i < s; ++i) {
      if (input_consumer_[e] >= sets[i].begin &&
          input_consumer_[e] < sets[i].end) {
        const Seconds arrival =
            problem_->topo->min_host_bandwidth(sets[i].accs)
                .transfer_time(Bytes(input_bytes_[e])) +
            problem_->sim_params.link_latency;
        start[i] = std::max(start[i], arrival);
      }
    }
  }

  // Longest path over the set DAG (ranges are ordered, edges go forward).
  // The pair byte totals come from one pass over the edge arrays instead
  // of an O(sets^2 x edges) bytes_between sweep.
  const std::vector<Bytes> crossing = inter_set_bytes(sets);
  std::vector<Seconds> finish(s, Seconds(0.0));
  Seconds makespan(0.0);
  for (std::size_t i = 0; i < s; ++i) {
    Seconds ready = start[i];
    for (std::size_t j = 0; j < i; ++j) {
      const Bytes bytes = crossing[j * s + i];
      if (bytes.count() <= 0.0) continue;
      ready = std::max(ready,
                       finish[j] + inter_set_time(sets[j].accs, sets[i].accs, bytes));
    }
    finish[i] = ready + set_latencies[i];
    makespan = std::max(makespan, finish[i]);
  }

  // Network output returns from the final set.
  makespan += problem_->topo->min_host_bandwidth(sets.back().accs)
                  .transfer_time(spine.output_bytes()) +
              problem_->sim_params.link_latency;
  return makespan;
}

EvaluationSummary AnalyticalCostModel::evaluate(const Mapping& mapping) const {
  const graph::ConvSpine& spine = *problem_->spine;
  mapping.validate(spine, *problem_->topo, *problem_->designs, problem_->adaptive);

  EvaluationSummary summary;
  const std::size_t num_sets = mapping.sets.size();
  const std::vector<Bytes> crossing = inter_set_bytes(mapping.sets);
  std::vector<Seconds> set_latencies;
  set_latencies.reserve(num_sets);
  for (std::size_t i = 0; i < num_sets; ++i) {
    const LayerAssignment& set = mapping.sets[i];
    const SetCost cost = set_cost(set);
    summary.analytic.compute += cost.latency.compute;
    summary.analytic.intra_set += cost.latency.intra_set;
    summary.memory_ok = summary.memory_ok && cost.memory_ok;
    summary.worst_set_footprint =
        std::max(summary.worst_set_footprint, cost.footprint.total());
    set_latencies.push_back(cost.latency.total());

    for (std::size_t j = i + 1; j < num_sets; ++j) {
      const Bytes bytes = crossing[i * num_sets + j];
      if (bytes.count() > 0.0) {
        summary.analytic.inter_set +=
            inter_set_time(set.accs, mapping.sets[j].accs, bytes);
      }
    }
  }

  // Host I/O component totals (also folded into the makespan).
  const LayerAssignment& last = mapping.sets.back();
  summary.analytic.host_io +=
      problem_->topo->min_host_bandwidth(mapping.sets.front().accs)
          .transfer_time(spine.input_bytes()) +
      problem_->sim_params.link_latency;
  summary.analytic.host_io +=
      problem_->topo->min_host_bandwidth(last.accs)
          .transfer_time(spine.output_bytes()) +
      problem_->sim_params.link_latency;

  summary.analytic_makespan = aggregate_makespan(mapping.sets, set_latencies);
  summary.energy = mapping_energy(mapping);
  return summary;
}

}  // namespace mars::core
