// Report helpers shared by the benchmark harnesses: paper-style comparison
// tables and workload summaries.
#pragma once

#include <string>
#include <vector>

#include "mars/core/mapping.h"
#include "mars/util/table.h"

namespace mars::core {

/// "-32.2%" — the paper's latency-reduction annotation (negative = faster).
[[nodiscard]] std::string latency_reduction(Seconds baseline, Seconds ours);

/// Model descriptor row data for Table III ("#Convs", "#Params", "FLOPs").
struct WorkloadSummary {
  std::string name;
  int num_convs = 0;
  int num_spine_layers = 0;
  double params = 0.0;
  double macs = 0.0;
};

[[nodiscard]] WorkloadSummary summarize(const graph::Graph& model);

/// One comparison row: model, baseline latency, MARS latency, reduction,
/// plus the paper's reference numbers for docs/EXPERIMENTS.md cross-checks.
struct ComparisonRow {
  WorkloadSummary workload;
  Seconds baseline{};
  Seconds ours{};
  std::string mapping;  // describe() of the winning mapping
};

/// Renders Table III-style output.
[[nodiscard]] Table comparison_table(const std::vector<ComparisonRow>& rows,
                                     const std::string& baseline_name,
                                     const std::string& ours_name);

}  // namespace mars::core
