// Mapping representation: the full design point MARS searches for.
//
// A Mapping is an ordered list of assignments; assignment i gives one
// accelerator set (AccSet mask + configured design), the contiguous spine
// range mapped to it (the paper's Map[LayerSet_i] = AccSet_i with layer
// sets contiguous in topological order), and the per-layer parallelism
// strategies chosen by the second level.
#pragma once

#include <string>
#include <vector>

#include "mars/accel/registry.h"
#include "mars/graph/spine.h"
#include "mars/parallel/strategy.h"
#include "mars/topology/topology.h"

namespace mars::core {

struct LayerAssignment {
  topology::AccMask accs = 0;
  /// Configured design (adaptive systems). kInvalidDesign in fixed-design
  /// mode, where each member keeps its Accelerator::fixed_design.
  accel::DesignId design = accel::kInvalidDesign;
  int begin = 0;  // spine range [begin, end)
  int end = 0;
  std::vector<parallel::Strategy> strategies;  // one per layer in range

  [[nodiscard]] int num_layers() const { return end - begin; }
  [[nodiscard]] int num_accs() const { return topology::mask_count(accs); }
};

struct Mapping {
  std::vector<LayerAssignment> sets;  // in layer order

  /// Checks coverage (ranges tile [0, spine.size())), disjoint masks,
  /// strategy arity/fit, and design validity. Throws on violation.
  void validate(const graph::ConvSpine& spine, const topology::Topology& topo,
                const accel::DesignRegistry& designs, bool adaptive) const;
};

/// Latency decomposition reported by both cost paths.
struct LatencyBreakdown {
  Seconds compute{};    // PE-array + fused DRAM time
  Seconds intra_set{};  // SS rings, All-Reduce, resharding inside a set
  Seconds inter_set{};  // activation hand-off between consecutive sets
  Seconds host_io{};    // network input / output via the host

  [[nodiscard]] Seconds total() const {
    return compute + intra_set + inter_set + host_io;
  }
};

struct EvaluationSummary {
  /// Component sums (resource totals; parallel branches may overlap, so
  /// the sum can exceed the critical path).
  LatencyBreakdown analytic;
  /// Closed-form critical-path estimate: per-set latencies scheduled over
  /// the set dependency DAG (what the GA optimises).
  Seconds analytic_makespan{};
  Seconds simulated{};  // event-driven makespan (the reported number)
  /// First-order energy estimate: compute MACs + design DRAM traffic +
  /// inter-set/host link bytes (AnalyticalCostModel::mapping_energy).
  Joules energy{};
  bool memory_ok = true;
  Bytes worst_set_footprint{};
};

/// Paper-style rendering ("Conv1-7 -> 4x SuperLIP; conv1: ES={H,W}, ...").
[[nodiscard]] std::string describe(const Mapping& mapping,
                                   const graph::ConvSpine& spine,
                                   const accel::DesignRegistry& designs,
                                   bool adaptive);

}  // namespace mars::core
