#include "mars/core/mapping.h"

#include <sstream>

#include "mars/util/error.h"

namespace mars::core {

void Mapping::validate(const graph::ConvSpine& spine, const topology::Topology& topo,
                       const accel::DesignRegistry& designs, bool adaptive) const {
  MARS_CHECK_ARG(!sets.empty(), "mapping has no accelerator sets");
  int cursor = 0;
  topology::AccMask used = 0;
  for (const LayerAssignment& set : sets) {
    MARS_CHECK_ARG(set.begin == cursor,
                   "layer ranges must be contiguous: expected begin "
                       << cursor << ", got " << set.begin);
    MARS_CHECK_ARG(set.end > set.begin, "empty layer range");
    cursor = set.end;

    MARS_CHECK_ARG(set.accs != 0, "assignment with empty accelerator set");
    MARS_CHECK_ARG((set.accs & used) == 0,
                   "accelerator sets overlap at " << topology::mask_to_string(
                       set.accs & used));
    used |= set.accs;
    MARS_CHECK_ARG((set.accs & ~topo.full_mask()) == 0,
                   "mask references accelerators outside the topology");
    MARS_CHECK_ARG(topo.connected(set.accs),
                   "accelerator set " << topology::mask_to_string(set.accs)
                                      << " is not connected");

    if (adaptive) {
      MARS_CHECK_ARG(set.design >= 0 && set.design < designs.size(),
                     "invalid design id " << set.design);
    } else {
      for (topology::AccId acc : topology::mask_members(set.accs)) {
        const int fixed = topo.accelerator(acc).fixed_design;
        MARS_CHECK_ARG(fixed >= 0 && fixed < designs.size(),
                       "accelerator " << acc << " has no fixed design");
      }
    }

    MARS_CHECK_ARG(static_cast<int>(set.strategies.size()) == set.num_layers(),
                   "strategy count " << set.strategies.size()
                                     << " != layer count " << set.num_layers());
    const int p = set.num_accs();
    for (int l = set.begin; l < set.end; ++l) {
      const parallel::Strategy& strategy =
          set.strategies[static_cast<std::size_t>(l - set.begin)];
      MARS_CHECK_ARG(strategy.fits(spine.node(l).shape, p),
                     "strategy " << strategy.to_string() << " does not fit layer "
                                 << spine.node(l).name << " on " << p
                                 << " accelerators");
    }
  }
  MARS_CHECK_ARG(cursor == spine.size(),
                 "mapping covers " << cursor << " of " << spine.size()
                                   << " layers");
}

std::string describe(const Mapping& mapping, const graph::ConvSpine& spine,
                     const accel::DesignRegistry& designs, bool adaptive) {
  std::ostringstream os;
  for (const LayerAssignment& set : mapping.sets) {
    os << spine.node(set.begin).name << ".." << spine.node(set.end - 1).name
       << " -> " << set.num_accs() << "x ";
    if (adaptive) {
      os << designs.design(set.design).name();
    } else {
      os << "fixed" << topology::mask_to_string(set.accs);
    }
    // Representative strategy: the layer with the largest MAC count.
    int representative = set.begin;
    for (int l = set.begin; l < set.end; ++l) {
      if (spine.node(l).shape.macs() > spine.node(representative).shape.macs()) {
        representative = l;
      }
    }
    os << "; " << spine.node(representative).name << ": "
       << set.strategies[static_cast<std::size_t>(representative - set.begin)]
              .to_string()
       << '\n';
  }
  return os.str();
}

}  // namespace mars::core
