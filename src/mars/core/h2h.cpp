#include "mars/core/h2h.h"

#include <algorithm>

#include "mars/sim/executor.h"
#include "mars/util/error.h"

namespace mars::core {

H2HMapper::H2HMapper(const Problem& problem, H2HConfig config)
    : problem_(&problem), config_(config) {
  problem.validate();
  MARS_CHECK_ARG(!problem.adaptive,
                 "H2H maps fixed-design systems; set Problem::adaptive=false");
}

Seconds H2HMapper::compute_time(int layer, int acc) const {
  const accel::AcceleratorDesign& design =
      problem_->designs->design(problem_->topo->accelerator(acc).fixed_design);
  const graph::SpineNode& node = problem_->spine->node(layer);
  Seconds time = design.conv_latency(node.shape, problem_->spine->dtype());
  time += design.frequency().time_for(design.dram_cycles(node.fused_traffic));
  return time;
}

Seconds H2HMapper::transfer_time(Bytes bytes, int src, int dst) const {
  if (src == dst || bytes.count() <= 0.0) return Seconds(0.0);
  const topology::Topology& topo = *problem_->topo;
  const Seconds latency = problem_->sim_params.link_latency;
  if (src >= 0 && dst >= 0 && topo.has_link(src, dst)) {
    return topo.link(src, dst).transfer_time(bytes) + latency;
  }
  const Bandwidth up =
      src >= 0 ? topo.host_bandwidth(src) : topo.host_bandwidth(dst);
  const Bandwidth down =
      dst >= 0 ? topo.host_bandwidth(dst) : topo.host_bandwidth(src);
  if (src < 0 || dst < 0) {
    return (src < 0 ? down : up).transfer_time(bytes) + latency;
  }
  return up.transfer_time(bytes) + down.transfer_time(bytes) + latency * 2.0 +
         problem_->sim_params.host_latency;
}

Seconds H2HMapper::schedule_makespan(const std::vector<int>& assignment) const {
  const graph::ConvSpine& spine = *problem_->spine;
  const int n = spine.size();
  std::vector<Seconds> acc_free(static_cast<std::size_t>(problem_->topo->size()),
                                Seconds(0.0));
  std::vector<Seconds> finish(static_cast<std::size_t>(n), Seconds(0.0));

  Seconds makespan(0.0);
  for (int layer = 0; layer < n; ++layer) {
    const int acc = assignment[static_cast<std::size_t>(layer)];
    Seconds ready(0.0);
    for (const graph::SpineEdge& edge : spine.edges()) {
      if (edge.consumer != layer) continue;
      const int src = edge.producer >= 0
                          ? assignment[static_cast<std::size_t>(edge.producer)]
                          : sim::kHost;
      const Seconds base =
          edge.producer >= 0 ? finish[static_cast<std::size_t>(edge.producer)]
                             : Seconds(0.0);
      ready = std::max(ready, base + transfer_time(edge.bytes, src, acc));
    }
    const Seconds start =
        std::max(ready, acc_free[static_cast<std::size_t>(acc)]);
    const Seconds end = start + compute_time(layer, acc);
    finish[static_cast<std::size_t>(layer)] = end;
    acc_free[static_cast<std::size_t>(acc)] = end;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

H2HResult H2HMapper::map() const {
  const graph::ConvSpine& spine = *problem_->spine;
  const int n = spine.size();
  const int num_accs = problem_->topo->size();

  // Phase 1: communication-aware list scheduling.
  std::vector<int> assignment(static_cast<std::size_t>(n), 0);
  std::vector<Seconds> acc_free(static_cast<std::size_t>(num_accs), Seconds(0.0));
  std::vector<Seconds> finish(static_cast<std::size_t>(n), Seconds(0.0));
  for (int layer = 0; layer < n; ++layer) {
    int best_acc = 0;
    Seconds best_end(0.0);
    for (int acc = 0; acc < num_accs; ++acc) {
      Seconds ready(0.0);
      for (const graph::SpineEdge& edge : spine.edges()) {
        if (edge.consumer != layer) continue;
        const int src = edge.producer >= 0
                            ? assignment[static_cast<std::size_t>(edge.producer)]
                            : sim::kHost;
        const Seconds base =
            edge.producer >= 0 ? finish[static_cast<std::size_t>(edge.producer)]
                               : Seconds(0.0);
        ready = std::max(ready, base + transfer_time(edge.bytes, src, acc));
      }
      const Seconds end = std::max(ready, acc_free[static_cast<std::size_t>(acc)]) +
                          compute_time(layer, acc);
      if (acc == 0 || end < best_end) {
        best_end = end;
        best_acc = acc;
      }
    }
    assignment[static_cast<std::size_t>(layer)] = best_acc;
    finish[static_cast<std::size_t>(layer)] = best_end;
    acc_free[static_cast<std::size_t>(best_acc)] = best_end;
  }

  // Phase 2: coordinate-descent refinement.
  Seconds best = schedule_makespan(assignment);
  for (int sweep = 0; sweep < config_.refinement_sweeps; ++sweep) {
    bool improved = false;
    for (int layer = 0; layer < n; ++layer) {
      const int original = assignment[static_cast<std::size_t>(layer)];
      for (int acc = 0; acc < num_accs; ++acc) {
        if (acc == original) continue;
        assignment[static_cast<std::size_t>(layer)] = acc;
        const Seconds trial = schedule_makespan(assignment);
        if (trial < best) {
          best = trial;
          improved = true;
        } else {
          assignment[static_cast<std::size_t>(layer)] = original;
        }
      }
    }
    if (!improved) break;
  }

  H2HResult result;
  result.assignment = assignment;
  result.analytic = best;
  const sim::Executor executor(*problem_->topo, problem_->sim_params);
  result.simulated = executor.run(build_task_graph(assignment)).makespan;
  return result;
}

sim::TaskGraph H2HMapper::build_task_graph(
    const std::vector<int>& assignment) const {
  const graph::ConvSpine& spine = *problem_->spine;
  MARS_CHECK_ARG(assignment.size() == static_cast<std::size_t>(spine.size()),
                 "one accelerator per spine layer required");

  sim::TaskGraph tg;
  std::vector<sim::TaskId> layer_task(assignment.size(), -1);
  for (int layer = 0; layer < spine.size(); ++layer) {
    const int acc = assignment[static_cast<std::size_t>(layer)];
    std::vector<sim::TaskId> deps;
    for (const graph::SpineEdge& edge : spine.edges()) {
      if (edge.consumer != layer) continue;
      const int src = edge.producer >= 0
                          ? assignment[static_cast<std::size_t>(edge.producer)]
                          : sim::kHost;
      std::vector<sim::TaskId> edge_deps;
      if (edge.producer >= 0) {
        edge_deps.push_back(layer_task[static_cast<std::size_t>(edge.producer)]);
      }
      if (src == acc) {
        if (!edge_deps.empty()) deps.push_back(edge_deps.front());
        continue;
      }
      deps.push_back(tg.add_transfer(src, acc, edge.bytes,
                                     spine.node(layer).name + "/in",
                                     std::move(edge_deps)));
    }
    layer_task[static_cast<std::size_t>(layer)] = tg.add_compute(
        acc, compute_time(layer, acc), spine.node(layer).name, std::move(deps));
  }
  // Output returns to the host from the last layer's accelerator.
  tg.add_transfer(assignment.back(), sim::kHost, spine.output_bytes(),
                  "host_output", {layer_task.back()});
  return tg;
}

}  // namespace mars::core
