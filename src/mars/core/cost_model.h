// Analytical cost model: the fast latency estimate driving the GA loops.
//
// Mirrors the event-driven simulator's structure (compute phases, SS rings,
// All-Reduce, resharding, inter-set transfers, host I/O) with closed-form
// times instead of contention replay. Bench A4 (bench_sim_agreement)
// quantifies the gap between the two paths.
#pragma once

#include <optional>
#include <vector>

#include "mars/core/mapping.h"
#include "mars/parallel/memory.h"
#include "mars/parallel/sharding.h"
#include "mars/sim/network.h"

namespace mars::core {

/// Everything a mapper needs to know about the problem instance.
struct Problem {
  const graph::ConvSpine* spine = nullptr;
  const topology::Topology* topo = nullptr;
  const accel::DesignRegistry* designs = nullptr;
  /// Adaptive systems configure one design per AccSet; fixed systems keep
  /// each accelerator's fixed_design and a set stalls for its slowest
  /// member (Section VI-C).
  bool adaptive = true;
  sim::SimParams sim_params{};
  /// Accelerators the mapper may use (0 = the whole topology). Lets a
  /// co-mapping search confine a tenant to a fleet slice while keeping the
  /// shared Topology object — sets, candidates and the baseline are all
  /// restricted to this mask.
  topology::AccMask placement = 0;

  /// The effective placement: `placement`, or the full mask when unset.
  [[nodiscard]] topology::AccMask placement_mask() const {
    return placement == 0 ? topo->full_mask() : placement;
  }

  void validate() const;
};

/// Cost of one LayerAssignment (its internal execution only).
struct SetCost {
  LatencyBreakdown latency;
  parallel::MemoryFootprint footprint;
  bool memory_ok = true;
  /// Latency with an infeasibility penalty applied — what GA fitness sees
  /// (finite so the search can climb out of infeasible regions).
  Seconds penalized{};
};

/// One layer's cost under a concrete strategy, given the activation layout
/// left by the previous layer (nullopt = entering the set).
struct LayerCost {
  Seconds compute{};    // phases x PE time + fused DRAM
  Seconds intra_set{};  // SS ring + All-Reduce + reshard/scatter
  parallel::ShardingPlan plan;

  [[nodiscard]] Seconds total() const { return compute + intra_set; }
};

/// Energy prices per byte moved (first-order, docs/EXPLORE.md): a DRAM
/// access and an inter-accelerator (or host) link transfer. Compute
/// energy is per-design (AcceleratorDesign::energy_per_mac).
inline constexpr double kDramPicojoulesPerByte = 40.0;
inline constexpr double kLinkPicojoulesPerByte = 150.0;

class AnalyticalCostModel {
 public:
  explicit AnalyticalCostModel(const Problem& problem);

  /// Cost of executing spine layer `layer` on `set` with `strategy`.
  [[nodiscard]] LayerCost layer_cost(
      const LayerAssignment& set, int layer, const parallel::Strategy& strategy,
      const std::optional<parallel::ActivationSharding>& upstream) const;

  /// Internal cost of one set: compute + fused DRAM + rings + All-Reduce +
  /// intra-set resharding + entry scatter, plus the memory check.
  [[nodiscard]] SetCost set_cost(const LayerAssignment& set) const;

  /// End-to-end breakdown of a full mapping (adds inter-set transfers and
  /// host I/O). `memory_ok` in the summary aggregates all sets.
  [[nodiscard]] EvaluationSummary evaluate(const Mapping& mapping) const;

  /// Energy of executing spine layer `layer` on `set`: compute MACs at
  /// the configured design's per-MAC price plus the design's DRAM traffic
  /// (re-reads and fused ops included) at kDramPicojoulesPerByte.
  /// Deliberately strategy-independent — sharding divides the work across
  /// members without changing its total (halo/fragmentation re-reads are
  /// second-order and ignored). Fixed-design sets average their members'
  /// prices (each member runs a 1/p share on its own design).
  [[nodiscard]] Joules layer_energy(const LayerAssignment& set, int layer) const;

  /// Whole-mapping energy: every layer's energy plus link energy for
  /// inter-set activation crossings and host input/output, priced at
  /// kLinkPicojoulesPerByte. Zero traffic contributes zero; a mapping
  /// with work always reports positive energy.
  [[nodiscard]] Joules mapping_energy(const Mapping& mapping) const;

  /// Per-phase compute seconds of `local` on the set (slowest member in
  /// fixed mode).
  [[nodiscard]] Seconds phase_compute_time(const LayerAssignment& set,
                                           const graph::ConvShape& local) const;

  /// Fused-op DRAM time per accelerator for spine layer `layer` under
  /// set size p.
  [[nodiscard]] Seconds fused_time(const LayerAssignment& set, int layer,
                                   int p) const;

  /// Transfer time of `bytes` between two disjoint sets over the best
  /// route (direct link or via host).
  [[nodiscard]] Seconds inter_set_time(topology::AccMask from, topology::AccMask to,
                                       Bytes bytes) const;

  /// Activation bytes flowing from `sets[producer]` to `sets[consumer]`
  /// (spine edges crossing the two contiguous ranges).
  [[nodiscard]] Bytes bytes_between(const std::vector<LayerAssignment>& sets,
                                    std::size_t producer,
                                    std::size_t consumer) const;

  /// bytes_between for every ordered pair at once: row-major S x S matrix
  /// with entry [producer * S + consumer]. Computed in a single pass over
  /// the contiguous edge arrays (each edge lands in exactly one cell when
  /// the set ranges are disjoint), so per-cell sums accumulate in edge
  /// order — bit-identical to calling bytes_between per pair. Requires
  /// disjoint layer ranges; layers outside every set contribute nothing.
  [[nodiscard]] std::vector<Bytes> inter_set_bytes(
      const std::vector<LayerAssignment>& sets) const;

  /// Critical-path aggregation: schedules the sets over their data-
  /// dependency DAG (set j feeds set i when a spine edge crosses them),
  /// charging inter-set transfers on the edges and host I/O at the
  /// boundaries. Equals the sequential sum for chain models; models branch
  /// overlap for multi-stream models. `set_latencies[i]` is the internal
  /// latency of `sets[i]`.
  [[nodiscard]] Seconds aggregate_makespan(
      const std::vector<LayerAssignment>& sets,
      const std::vector<Seconds>& set_latencies) const;

  [[nodiscard]] const Problem& problem() const { return *problem_; }

 private:
  const Problem* problem_;
  // Contiguous (struct-of-arrays) copies of the spine edges, split into
  // layer-to-layer edges and network-input edges. The per-candidate inner
  // loops (inter_set_bytes, aggregate_makespan's host-input scan) stream
  // these flat arrays instead of chasing SpineEdge structs — the search
  // hot path re-aggregates them once per fitness evaluation.
  std::vector<int> edge_producer_;
  std::vector<int> edge_consumer_;
  std::vector<double> edge_bytes_;
  std::vector<int> input_consumer_;
  std::vector<double> input_bytes_;
};

}  // namespace mars::core
