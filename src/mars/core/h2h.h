// H2H-style comparator (Section VI-C).
//
// H2H (Zhang et al., DAC 2022) maps heterogeneous models onto heterogeneous
// fixed-design multi-accelerator systems with computation and communication
// awareness, but performs NO intra-layer parallelism: each layer runs
// entirely on one accelerator. Our re-implementation follows that contract:
//  1. communication-aware list scheduling over the spine DAG (each layer
//     placed on the accelerator minimising its finish time, accounting for
//     producer transfer costs and accelerator availability), then
//  2. coordinate-descent refinement sweeps re-placing single layers.
// The final latency is replayed on the same event-driven simulator MARS
// uses, so Table IV compares like with like.
#pragma once

#include <vector>

#include "mars/core/evaluator.h"

namespace mars::core {

struct H2HConfig {
  int refinement_sweeps = 3;
};

struct H2HResult {
  std::vector<int> assignment;  // spine layer index -> accelerator id
  Seconds analytic{};           // list-schedule makespan estimate
  Seconds simulated{};          // event-driven makespan (reported)
};

class H2HMapper {
 public:
  /// `problem.adaptive` must be false: every accelerator carries its fixed
  /// design, as in H2H's testbed.
  explicit H2HMapper(const Problem& problem, H2HConfig config = {});

  [[nodiscard]] H2HResult map() const;

  /// Task graph of a given assignment (exposed for tests/traces).
  [[nodiscard]] sim::TaskGraph build_task_graph(
      const std::vector<int>& assignment) const;

 private:
  [[nodiscard]] Seconds compute_time(int layer, int acc) const;
  [[nodiscard]] Seconds transfer_time(Bytes bytes, int src, int dst) const;
  /// List-schedule makespan of a full assignment.
  [[nodiscard]] Seconds schedule_makespan(const std::vector<int>& assignment) const;

  const Problem* problem_;
  H2HConfig config_;
};

}  // namespace mars::core
