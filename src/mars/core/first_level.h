// First-level genome decode (pink box of Fig. 3): accelerator-set
// partition, per-set design configuration, and contiguous layer allocation.
//
// Genome layout for C candidates and D designs (adaptive mode):
//   [0, C)            candidate priority genes (decode_partition)
//   [C, C + C*D)      design genes per (candidate, design) — argmax wins
//   [C + C*D, C*(D+2)) workload-share genes per candidate
// Fixed-design mode drops nothing (design genes are simply ignored), so
// genome size is stable across modes.
#pragma once

#include <vector>

#include "mars/core/cost_model.h"
#include "mars/ga/engine.h"
#include "mars/topology/candidates.h"

namespace mars::core {

/// A first-level decode: the mapping skeleton (sets + design + ranges)
/// before strategies are chosen.
struct Skeleton {
  std::vector<LayerAssignment> sets;  // strategies empty
};

class FirstLevelCodec {
 public:
  FirstLevelCodec(const Problem& problem,
                  std::vector<topology::AccSetCandidate> candidates);

  [[nodiscard]] int genome_size() const;
  [[nodiscard]] const std::vector<topology::AccSetCandidate>& candidates() const {
    return candidates_;
  }

  /// The decode intermediates of one genome, indexed by partition entry
  /// (zero-layer entries kept). Saved by decode() on request so that a
  /// later redecode() of a mutated child can reuse every stage a move did
  /// not touch.
  struct DecodeTrace {
    std::vector<topology::AccMask> partition;
    std::vector<int> candidate;  // candidate index per partition entry
    std::vector<int> counts;     // layers per partition entry (may be 0)
    std::vector<int> designs;    // argmax design per entry; -1 in fixed mode
  };

  /// The decode stage a gene index feeds (see the layout above).
  enum class GeneBlock { kPriority, kDesign, kShare };
  [[nodiscard]] GeneBlock block_of(std::size_t gene) const;
  /// The candidate a design or share gene belongs to (for a priority gene
  /// the gene index itself is the candidate).
  [[nodiscard]] int candidate_of(std::size_t gene) const;

  /// Decodes a genome into a skeleton. Sets receiving zero layers are
  /// dropped (their accelerators idle). Always yields >= 1 set covering
  /// every spine layer. When `trace` is non-null the intermediates are
  /// stored for use as the parent state of redecode().
  [[nodiscard]] Skeleton decode(const ga::Genome& genome,
                                DecodeTrace* trace = nullptr) const;

  /// The outcome of an incremental re-decode: either the child's trace is
  /// identical to the parent's (`same`, and `trace` is left empty — the
  /// caller keeps using the parent's), or `trace` holds the child's
  /// intermediates, rebuilt with only the stages the changed genes feed
  /// recomputed.
  struct Retrace {
    bool same = true;
    DecodeTrace trace;  // empty when same
  };

  /// Incremental decode of `child` — the `parent` genome (whose decode
  /// intermediates are `parent_trace`) with the `changed` genes edited.
  /// Exact by construction: only the decode stages the changed genes feed
  /// are recomputed, through the same helpers decode() runs. A changed
  /// priority gene first gets a pairwise order-preservation check against
  /// the parent priorities (the partition is a pure function of the
  /// stable-sort order, so preserved comparisons prove the partition
  /// unchanged without recomputing it); only order-crossing moves pay for
  /// decode_partition, and only an actually moved partition rebuilds the
  /// downstream stages. Layer counts are recomputed when a share gene
  /// changed, designs for candidates whose design block was touched.
  /// `changed` must be a superset of the genes where child differs from
  /// the parent. Does not assemble a skeleton: callers that detect `same`
  /// skip assembly entirely.
  [[nodiscard]] Retrace retrace(const ga::Genome& child,
                                const ga::Genome& parent,
                                const DecodeTrace& parent_trace,
                                const std::vector<std::size_t>& changed) const;

  /// retrace() + assemble() convenience: the child's skeleton (and trace,
  /// on request) whether or not the move changed anything.
  [[nodiscard]] Skeleton redecode(const ga::Genome& child,
                                  const ga::Genome& parent,
                                  const DecodeTrace& parent_trace,
                                  const std::vector<std::size_t>& changed,
                                  DecodeTrace* trace = nullptr) const;

  /// Trace -> skeleton (drops zero-count entries, checks coverage). A pure
  /// function of the trace, so equal traces always assemble equal
  /// skeletons — the identity retrace() relies on.
  [[nodiscard]] Skeleton assemble(const DecodeTrace& trace) const;

  /// Builds a genome that decodes to `skeleton` (used to seed the GA with
  /// the baseline mapping and with profiled design scores).
  [[nodiscard]] ga::Genome encode(const Skeleton& skeleton,
                                  const std::vector<double>& design_scores) const;

  /// A genome whose design genes follow `design_scores` and whose other
  /// genes are random — the paper's profiled initialisation.
  [[nodiscard]] ga::Genome profiled_random(const std::vector<double>& design_scores,
                                           Rng& rng) const;

 private:
  [[nodiscard]] int candidate_index(topology::AccMask mask) const;
  /// Largest-remainder layer allocation from the share-gene block, one
  /// count per partition entry. Shared by decode() and redecode() so both
  /// paths run the identical rounding code.
  [[nodiscard]] std::vector<int> decode_counts(
      const double* share_genes, const std::vector<int>& candidate) const;
  /// Argmax design for one candidate's design-gene block.
  [[nodiscard]] int decode_design(const double* design_genes,
                                  int candidate) const;

  const Problem* problem_;
  std::vector<topology::AccSetCandidate> candidates_;
};

}  // namespace mars::core
