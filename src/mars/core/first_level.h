// First-level genome decode (pink box of Fig. 3): accelerator-set
// partition, per-set design configuration, and contiguous layer allocation.
//
// Genome layout for C candidates and D designs (adaptive mode):
//   [0, C)            candidate priority genes (decode_partition)
//   [C, C + C*D)      design genes per (candidate, design) — argmax wins
//   [C + C*D, C*(D+2)) workload-share genes per candidate
// Fixed-design mode drops nothing (design genes are simply ignored), so
// genome size is stable across modes.
#pragma once

#include <vector>

#include "mars/core/cost_model.h"
#include "mars/ga/engine.h"
#include "mars/topology/candidates.h"

namespace mars::core {

/// A first-level decode: the mapping skeleton (sets + design + ranges)
/// before strategies are chosen.
struct Skeleton {
  std::vector<LayerAssignment> sets;  // strategies empty
};

class FirstLevelCodec {
 public:
  FirstLevelCodec(const Problem& problem,
                  std::vector<topology::AccSetCandidate> candidates);

  [[nodiscard]] int genome_size() const;
  [[nodiscard]] const std::vector<topology::AccSetCandidate>& candidates() const {
    return candidates_;
  }

  /// Decodes a genome into a skeleton. Sets receiving zero layers are
  /// dropped (their accelerators idle). Always yields >= 1 set covering
  /// every spine layer.
  [[nodiscard]] Skeleton decode(const ga::Genome& genome) const;

  /// Builds a genome that decodes to `skeleton` (used to seed the GA with
  /// the baseline mapping and with profiled design scores).
  [[nodiscard]] ga::Genome encode(const Skeleton& skeleton,
                                  const std::vector<double>& design_scores) const;

  /// A genome whose design genes follow `design_scores` and whose other
  /// genes are random — the paper's profiled initialisation.
  [[nodiscard]] ga::Genome profiled_random(const std::vector<double>& design_scores,
                                           Rng& rng) const;

 private:
  [[nodiscard]] int candidate_index(topology::AccMask mask) const;

  const Problem* problem_;
  std::vector<topology::AccSetCandidate> candidates_;
};

}  // namespace mars::core
