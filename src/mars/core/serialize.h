// JSON interchange for mappings and evaluation results — export for
// downstream tooling (deployment scripts, dashboards) and the CLI, plus
// the inverse parse that rehydrates a searched Mapping (the serving
// mapping cache's load path). mapping_from_json(to_json(m)) reproduces
// `m` exactly: every serialised field is integral or a registered name,
// so the round-trip is lossless.
#pragma once

#include "mars/core/mapping.h"
#include "mars/util/json.h"

namespace mars::core {

/// Full mapping: sets (mask, members, design name, layer range) with
/// per-layer strategies (layer name, ES splits, SS dim).
[[nodiscard]] JsonValue to_json(const Mapping& mapping,
                                const graph::ConvSpine& spine,
                                const accel::DesignRegistry& designs,
                                bool adaptive);

/// Inverse of the Mapping to_json above. Resolves design names against
/// `designs`, rebuilds masks/ranges/strategies, and validates the result
/// against (spine, topo, designs, adaptive). Throws InvalidArgument when
/// the JSON does not describe a valid mapping of this exact problem
/// (wrong model name, layer count, unknown design/dim, coverage holes).
[[nodiscard]] Mapping mapping_from_json(const JsonValue& json,
                                        const graph::ConvSpine& spine,
                                        const topology::Topology& topo,
                                        const accel::DesignRegistry& designs,
                                        bool adaptive);

/// Inverse of the Strategy to_json below.
[[nodiscard]] parallel::Strategy strategy_from_json(const JsonValue& json);

/// Evaluation summary: simulated + analytic makespans, breakdown
/// components, memory verdict.
[[nodiscard]] JsonValue to_json(const EvaluationSummary& summary);

/// One parallelism strategy.
[[nodiscard]] JsonValue to_json(const parallel::Strategy& strategy);

}  // namespace mars::core
