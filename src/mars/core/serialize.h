// JSON export of mappings and evaluation results — the interchange format
// for downstream tooling (deployment scripts, dashboards) and the CLI.
#pragma once

#include "mars/core/mapping.h"
#include "mars/util/json.h"

namespace mars::core {

/// Full mapping: sets (mask, members, design name, layer range) with
/// per-layer strategies (layer name, ES splits, SS dim).
[[nodiscard]] JsonValue to_json(const Mapping& mapping,
                                const graph::ConvSpine& spine,
                                const accel::DesignRegistry& designs,
                                bool adaptive);

/// Evaluation summary: simulated + analytic makespans, breakdown
/// components, memory verdict.
[[nodiscard]] JsonValue to_json(const EvaluationSummary& summary);

/// One parallelism strategy.
[[nodiscard]] JsonValue to_json(const parallel::Strategy& strategy);

}  // namespace mars::core
