// The first-level search space, factored out of the search algorithm.
//
// Every mapper that explores skeletons (the two-level GA, simulated
// annealing, random sampling) needs the same machinery: the profiled
// design scores, the AccSet candidate family, the genome codec, the
// memoised second-level strategy search that prices a skeleton, and the
// completion/polish steps that turn the winning skeleton into a full
// Mapping. SkeletonSpace owns all of it so search engines reduce to
// their acceptance rule.
//
// Ownership: like Mars, a non-owning pointer to the Problem — the caller
// keeps the spine/topology/registry alive for this object's lifetime.
// fitness() memoises per (layer range, AccSet, design), so sharing one
// SkeletonSpace across a search amortises second-level work exactly as
// Mars::cache_ used to.
//
// Parallelism: fitness_batch() prices many skeletons at once, fanning the
// uncached second-level searches across a util::WorkerPool. Results are
// byte-identical to serial evaluation (the greedy oracle is a pure
// function of the cache key), and so are the hit/miss counters: the
// first appearance of a key in a batch is the miss, every later one a
// hit, exactly as a serial left-to-right sweep would count them.
#pragma once

#include <map>
#include <vector>

#include "mars/accel/profiler.h"
#include "mars/core/evaluator.h"
#include "mars/core/first_level.h"
#include "mars/core/second_level.h"

namespace mars::util {
class WorkerPool;
}

namespace mars::core {

class SkeletonSpace {
 public:
  struct Config {
    SecondLevelConfig second;
    /// Edge-removal/bisection AccSet candidates; when false (ablation A3)
    /// only the trivial family {full system} u {singletons} is offered.
    bool heuristic_candidates = true;
  };

  SkeletonSpace(const Problem& problem, const Config& config);

  [[nodiscard]] const Problem& problem() const { return *problem_; }
  [[nodiscard]] const FirstLevelCodec& codec() const { return codec_; }
  [[nodiscard]] const accel::ProfileMatrix& profile() const { return profile_; }
  [[nodiscard]] const MappingEvaluator& evaluator() const { return evaluator_; }
  [[nodiscard]] const SecondLevelSearch& second() const { return second_; }
  [[nodiscard]] std::vector<double> design_scores() const {
    return profile_.design_scores();
  }

  /// Penalized analytic makespan of `skeleton` with second-level greedy
  /// strategies (memoised) — the fitness every skeleton search minimises.
  [[nodiscard]] double fitness(const Skeleton& skeleton);

  /// fitness() over a whole batch. When `pool` is non-null the uncached
  /// second-level searches (the expensive part — each is an independent
  /// pure function of its key) run across the pool; the dedupe, the cache
  /// insertion order, and the returned values are identical to evaluating
  /// the batch serially, at any thread count. `pool == nullptr` runs the
  /// same code path single-threaded.
  [[nodiscard]] std::vector<double> fitness_batch(
      const std::vector<Skeleton>& skeletons, util::WorkerPool* pool = nullptr);

  /// decode + fitness_batch in one call — the shape every genome search
  /// (GA cohorts, anneal chains, random samples) prices with. The decode
  /// fans across the pool too (a pure function, so partitioning cannot
  /// change the result).
  [[nodiscard]] std::vector<double> fitness_batch(
      const std::vector<ga::Genome>& genomes, util::WorkerPool* pool = nullptr);

  /// The parallel decode underlying the genome overload.
  [[nodiscard]] std::vector<Skeleton> decode_batch(
      const std::vector<ga::Genome>& genomes,
      util::WorkerPool* pool = nullptr) const;

  /// `skeleton` with its memoised second-level strategies filled in.
  [[nodiscard]] Mapping complete(const Skeleton& skeleton);

  /// GA-polish every set's strategies in place (the paper's refine-winner
  /// pass), keeping the better of greedy and refined per set.
  void polish(Mapping& mapping, Rng& rng) const;

  /// The Herald-extended baseline skeleton (GA seed / SA start point).
  [[nodiscard]] Skeleton baseline() const;

  [[nodiscard]] long long cache_hits() const { return cache_hits_; }
  [[nodiscard]] long long cache_misses() const { return cache_misses_; }

 private:
  struct CacheKey {
    int begin;
    int end;
    topology::AccMask accs;
    accel::DesignId design;
    auto operator<=>(const CacheKey&) const = default;
  };

  [[nodiscard]] const SecondLevelResult& second_level_for(
      const LayerAssignment& skeleton);

  const Problem* problem_;
  Config config_;
  accel::ProfileMatrix profile_;
  std::vector<topology::AccSetCandidate> candidates_;
  FirstLevelCodec codec_;
  SecondLevelSearch second_;
  MappingEvaluator evaluator_;
  std::map<CacheKey, SecondLevelResult> cache_;
  long long cache_hits_ = 0;
  long long cache_misses_ = 0;
};

}  // namespace mars::core
