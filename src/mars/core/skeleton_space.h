// The first-level search space, factored out of the search algorithm.
//
// Every mapper that explores skeletons (the two-level GA, simulated
// annealing, random sampling) needs the same machinery: the profiled
// design scores, the AccSet candidate family, the genome codec, the
// memoised second-level strategy search that prices a skeleton, and the
// completion/polish steps that turn the winning skeleton into a full
// Mapping. SkeletonSpace owns all of it so search engines reduce to
// their acceptance rule.
//
// Ownership: like Mars, a non-owning pointer to the Problem — the caller
// keeps the spine/topology/registry alive for this object's lifetime.
// fitness() memoises per (layer range, AccSet, design), so sharing one
// SkeletonSpace across a search amortises second-level work exactly as
// Mars::cache_ used to.
//
// Parallelism: fitness_batch() prices many skeletons at once, fanning the
// uncached second-level searches across a util::WorkerPool. Results are
// byte-identical to serial evaluation (the greedy oracle is a pure
// function of the cache key), and so are the hit/miss counters: the
// first appearance of a key in a batch is the miss, every later one a
// hit, exactly as a serial left-to-right sweep would count them.
#pragma once

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mars/accel/profiler.h"
#include "mars/core/evaluator.h"
#include "mars/core/first_level.h"
#include "mars/core/second_level.h"
#include "mars/obs/metrics.h"

namespace mars::util {
class WorkerPool;
}

namespace mars::core {

/// The move description fitness_delta_batch consumes — defined next to
/// the GA engine that emits it (see ga::GenomeDelta for the superset
/// contract on `changed`).
using GenomeDelta = ga::GenomeDelta;

class SkeletonSpace {
 public:
  struct Config {
    SecondLevelConfig second;
    /// Edge-removal/bisection AccSet candidates; when false (ablation A3)
    /// only the trivial family {full system} u {singletons} is offered.
    bool heuristic_candidates = true;
  };

  SkeletonSpace(const Problem& problem, const Config& config);
  /// Flushes the instance metrics into the installed global registry
  /// (obs::metrics()), when one is installed.
  ~SkeletonSpace();

  [[nodiscard]] const Problem& problem() const { return *problem_; }
  [[nodiscard]] const FirstLevelCodec& codec() const { return codec_; }
  [[nodiscard]] const accel::ProfileMatrix& profile() const { return profile_; }
  [[nodiscard]] const MappingEvaluator& evaluator() const { return evaluator_; }
  [[nodiscard]] const SecondLevelSearch& second() const { return second_; }
  [[nodiscard]] std::vector<double> design_scores() const {
    return profile_.design_scores();
  }

  /// Penalized analytic makespan of `skeleton` with second-level greedy
  /// strategies (memoised) — the fitness every skeleton search minimises.
  [[nodiscard]] double fitness(const Skeleton& skeleton);

  /// fitness() over a whole batch. When `pool` is non-null the uncached
  /// second-level searches (the expensive part — each is an independent
  /// pure function of its key) run across the pool; the dedupe, the cache
  /// insertion order, and the returned values are identical to evaluating
  /// the batch serially, at any thread count. `pool == nullptr` runs the
  /// same code path single-threaded.
  [[nodiscard]] std::vector<double> fitness_batch(
      const std::vector<Skeleton>& skeletons, util::WorkerPool* pool = nullptr);

  /// decode + fitness_batch in one call — the shape every genome search
  /// (GA cohorts, anneal chains, random samples) prices with. The decode
  /// fans across the pool too (a pure function, so partitioning cannot
  /// change the result).
  [[nodiscard]] std::vector<double> fitness_batch(
      const std::vector<ga::Genome>& genomes, util::WorkerPool* pool = nullptr);

  /// The parallel decode underlying the genome overload.
  [[nodiscard]] std::vector<Skeleton> decode_batch(
      const std::vector<ga::Genome>& genomes,
      util::WorkerPool* pool = nullptr) const;

  /// fitness_batch(children, pool), but told how each child differs from a
  /// parent genome in `parents`. A child whose parent this object priced
  /// recently (the genome fitness paths keep a bounded record per genome)
  /// is re-decoded incrementally via FirstLevelCodec::redecode; when the
  /// skeleton comes out identical to the parent's the evaluation
  /// short-circuits to the parent's fitness, and otherwise sets the move
  /// did not touch reuse the parent's per-set latencies without a cache
  /// lookup. Children without a usable record fall back to the full path.
  /// The contract is exactness, not approximation: the returned fitness
  /// values AND the hit/miss counter increments are bit-identical to
  /// fitness_batch(children, pool), at any thread count.
  [[nodiscard]] std::vector<double> fitness_delta_batch(
      const std::vector<ga::Genome>& parents,
      const std::vector<ga::Genome>& children,
      const std::vector<GenomeDelta>& deltas,
      util::WorkerPool* pool = nullptr);

  /// `skeleton` with its memoised second-level strategies filled in.
  [[nodiscard]] Mapping complete(const Skeleton& skeleton);

  /// GA-polish every set's strategies in place (the paper's refine-winner
  /// pass), keeping the better of greedy and refined per set.
  void polish(Mapping& mapping, Rng& rng) const;

  /// The Herald-extended baseline skeleton (GA seed / SA start point).
  [[nodiscard]] Skeleton baseline() const;

  /// Second-level memo hit/miss counts (the `search.space.memo.*`
  /// counters). The exactness contracts above are stated in terms of these
  /// two values.
  [[nodiscard]] long long cache_hits() const { return memo_hits_->value(); }
  [[nodiscard]] long long cache_misses() const {
    return memo_misses_->value();
  }

  /// All instance counters (memo, record table, delta path) by name; see
  /// docs/OBSERVABILITY.md for the `search.space.*` naming scheme.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  struct CacheKey {
    int begin;
    int end;
    topology::AccMask accs;
    accel::DesignId design;
    auto operator<=>(const CacheKey&) const = default;
  };

  /// Order-free mixing of the key fields. The cache is only ever probed by
  /// key (never iterated), so hashing instead of ordering is observable
  /// solely as speed.
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      std::size_t h = 1469598103934665603ull;
      const auto mix = [&h](unsigned long long bits) {
        h = (h ^ bits) * 1099511628211ull;
      };
      mix(static_cast<unsigned long long>(static_cast<unsigned>(key.begin)));
      mix(static_cast<unsigned long long>(static_cast<unsigned>(key.end)));
      mix(static_cast<unsigned long long>(key.accs));
      mix(static_cast<unsigned long long>(static_cast<unsigned>(key.design)));
      return h;
    }
  };

  /// One priced genome, kept so the next generation's mutants can reuse
  /// its decode trace and per-set latencies. Invariant: every set of
  /// `skeleton` has been published to cache_ (which never evicts), so a
  /// set matching a recorded parent set is always a cache hit — the delta
  /// path may charge it as one without a map lookup.
  struct EvalPayload {
    FirstLevelCodec::DecodeTrace trace;
    Skeleton skeleton;
    std::vector<Seconds> latencies;  // penalized, one per set
    double fitness = 0.0;
  };
  /// Records share payloads immutably: a child whose move left the decode
  /// trace untouched aliases its parent's payload instead of copying it,
  /// and a payload outlives any records_ eviction while a batch still
  /// holds it.
  using EvalRecord = std::shared_ptr<const EvalPayload>;

  [[nodiscard]] const SecondLevelResult& second_level_for(
      const LayerAssignment& skeleton);

  /// Phases 1-3 shared by every batch path: the serial hit/miss key sweep,
  /// the (optionally pooled) greedy pricing of deduped missing keys, the
  /// first-seen-order publish, and the per-skeleton penalized latencies
  /// read back from the warm cache.
  [[nodiscard]] std::vector<std::vector<Seconds>> price_batch(
      const std::vector<Skeleton>& skeletons, util::WorkerPool* pool);

  [[nodiscard]] EvalRecord recall(const ga::Genome& genome) const;
  void remember(const ga::Genome& genome, EvalRecord record);

  const Problem* problem_;
  Config config_;
  accel::ProfileMatrix profile_;
  std::vector<topology::AccSetCandidate> candidates_;
  FirstLevelCodec codec_;
  SecondLevelSearch second_;
  MappingEvaluator evaluator_;
  std::unordered_map<CacheKey, SecondLevelResult, CacheKeyHash> cache_;
  /// Instance metric registry backing the counters below (one per
  /// SkeletonSpace so per-search counts stay exact); the destructor folds
  /// it into the installed global registry. The Counter pointers are
  /// resolved once in the constructor — registry references are stable —
  /// so hot-path increments are a single relaxed atomic add.
  obs::MetricsRegistry metrics_;
  obs::Counter* memo_hits_;
  obs::Counter* memo_misses_;
  obs::Counter* record_hits_;
  obs::Counter* record_misses_;
  obs::Counter* record_evictions_;
  obs::Counter* delta_unchanged_;
  obs::Counter* delta_bails_;
  /// FNV-1a over the genome's byte representation. Hashing bit patterns is
  /// sound here: equality stays the exact operator== on the doubles, and a
  /// key the hash cannot find again (e.g. a NaN gene) merely forces the
  /// exact full-path fallback.
  struct GenomeHash {
    std::size_t operator()(const ga::Genome& genome) const {
      std::size_t h = 1469598103934665603ull;
      for (const double gene : genome) {
        unsigned long long bits;
        std::memcpy(&bits, &gene, sizeof bits);
        h = (h ^ bits) * 1099511628211ull;
      }
      return h;
    }
  };

  /// One slot of the direct-mapped record table; empty while record is
  /// null.
  struct RecordSlot {
    ga::Genome genome;
    EvalRecord record;
  };

  /// Genome-keyed records backing fitness_delta_batch, held in a
  /// direct-mapped table (power-of-two slots, overwrite on collision) so
  /// recall/remember sit on the per-child hot path at the cost of one
  /// hash and one compare. Collisions evict silently, which can only
  /// force the exact full-path fallback, never change a result or a
  /// counter. Allocated lazily on the first remember().
  static constexpr std::size_t kRecordSlots = 4096;
  std::vector<RecordSlot> records_;
};

}  // namespace mars::core
