#include "mars/core/report.h"

#include "mars/util/strings.h"

namespace mars::core {

std::string latency_reduction(Seconds baseline, Seconds ours) {
  if (baseline.count() <= 0.0) return "n/a";
  return signed_percent(ours / baseline - 1.0, 1);
}

WorkloadSummary summarize(const graph::Graph& model) {
  WorkloadSummary summary;
  summary.name = model.name();
  summary.num_convs = model.num_convs();
  summary.num_spine_layers = model.num_spine_layers();
  summary.params = model.total_params();
  summary.macs = model.total_macs();
  return summary;
}

Table comparison_table(const std::vector<ComparisonRow>& rows,
                       const std::string& baseline_name,
                       const std::string& ours_name) {
  Table table({"Model", "#Convs", "#Params", "MACs", baseline_name + " /ms",
               ours_name + " /ms", "Reduction"});
  for (const ComparisonRow& row : rows) {
    table.add_row({row.workload.name, std::to_string(row.workload.num_convs),
                   si_count(row.workload.params), si_count(row.workload.macs),
                   format_double(row.baseline.millis(), 3),
                   format_double(row.ours.millis(), 3),
                   latency_reduction(row.baseline, row.ours)});
  }
  return table;
}

}  // namespace mars::core
