#include "mars/core/evaluator.h"

#include <optional>

#include "mars/parallel/comm_pattern.h"
#include "mars/parallel/sharding.h"
#include "mars/sim/collective.h"
#include "mars/util/error.h"

namespace mars::core {

MappingEvaluator::MappingEvaluator(const Problem& problem)
    : problem_(&problem), model_(problem) {}

sim::TaskGraph MappingEvaluator::build_task_graph(const Mapping& mapping) const {
  const graph::ConvSpine& spine = *problem_->spine;
  mapping.validate(spine, *problem_->topo, *problem_->designs, problem_->adaptive);
  sim::TaskGraph tg;
  append_inference(tg, mapping, "");
  return tg;
}

void MappingEvaluator::append_inference(sim::TaskGraph& tg, const Mapping& mapping,
                                        const std::string& prefix) const {
  const graph::ConvSpine& spine = *problem_->spine;

  // layer -> owning set index (ranges are contiguous and ordered).
  std::vector<std::size_t> owner(static_cast<std::size_t>(spine.size()), 0);
  for (std::size_t s = 0; s < mapping.sets.size(); ++s) {
    for (int l = mapping.sets[s].begin; l < mapping.sets[s].end; ++l) {
      owner[static_cast<std::size_t>(l)] = s;
    }
  }
  // Completion tasks per spine layer (its output is ready on its set).
  std::vector<std::vector<sim::TaskId>> done(
      static_cast<std::size_t>(spine.size()));

  std::vector<sim::TaskId> frontier;
  for (std::size_t s = 0; s < mapping.sets.size(); ++s) {
    const LayerAssignment& set = mapping.sets[s];
    const std::vector<topology::AccId> members = topology::mask_members(set.accs);
    const int p = static_cast<int>(members.size());

    frontier.clear();  // sets synchronise through data edges, not order
    std::optional<parallel::ActivationSharding> upstream;
    for (int layer = set.begin; layer < set.end; ++layer) {
      // Data arriving from outside the set: host inputs and cross-set
      // activation edges, one transfer per spine edge.
      for (const graph::SpineEdge& edge : spine.edges()) {
        if (edge.consumer != layer) continue;
        if (edge.producer < 0) {
          frontier.push_back(tg.add_transfer(
              sim::kHost, members.front(), edge.bytes,
              prefix + spine.node(layer).name + "/host_in"));
          continue;
        }
        const std::size_t producer_set =
            owner[static_cast<std::size_t>(edge.producer)];
        if (producer_set == s) continue;  // intra-set: already sequenced
        const std::vector<topology::AccId> producer_members =
            topology::mask_members(mapping.sets[producer_set].accs);
        frontier.push_back(tg.add_transfer(
            producer_members.front(), members.front(), edge.bytes,
            prefix + spine.node(layer).name + "/cross_set",
            done[static_cast<std::size_t>(edge.producer)]));
      }
      const graph::ConvShape& shape = spine.node(layer).shape;
      const parallel::Strategy& strategy =
          set.strategies[static_cast<std::size_t>(layer - set.begin)];
      const parallel::ShardingPlan plan =
          parallel::make_plan(shape, spine.dtype(), strategy, p);
      const std::string name = prefix + spine.node(layer).name;

      // Input redistribution.
      if (p > 1) {
        const Bytes in_bytes = shape.in_bytes(spine.dtype());
        Bytes moved{};
        if (upstream.has_value()) {
          moved = parallel::reshard_cost(*upstream, shape, plan.required,
                                         in_bytes, p, spine.dtype())
                      .moved;
        } else {
          moved =
              in_bytes * plan.required.fraction() * static_cast<double>(p - 1);
        }
        if (moved.count() > 0.0) {
          frontier = upstream.has_value()
                         ? sim::ring_shift(tg, members,
                                           moved / static_cast<double>(p),
                                           frontier, name + "/reshard")
                         : sim::scatter(tg, members.front(), members, moved,
                                        frontier, name + "/scatter");
        }
      }

      // Compute phases with SS ring shifts between them.
      for (int phase = 0; phase < plan.phases; ++phase) {
        std::vector<sim::TaskId> phase_tasks;
        phase_tasks.reserve(members.size());
        for (topology::AccId acc : members) {
          Seconds duration;
          if (problem_->adaptive) {
            duration = problem_->designs->design(set.design)
                           .conv_latency(plan.local, spine.dtype());
          } else {
            duration = problem_->designs
                           ->design(problem_->topo->accelerator(acc).fixed_design)
                           .conv_latency(plan.local, spine.dtype());
          }
          phase_tasks.push_back(tg.add_compute(
              acc, duration, name + "/ph" + std::to_string(phase), frontier));
        }
        frontier = std::move(phase_tasks);
        if (phase + 1 < plan.phases && plan.ring_hop_bytes.count() > 0.0) {
          frontier = sim::ring_shift(tg, members, plan.ring_hop_bytes, frontier,
                                     name + "/ss_ring");
        }
      }

      // Fused non-conv ops (DRAM-bound, sharded across the set).
      const Bytes fused = spine.node(layer).fused_traffic;
      if (fused.count() > 0.0) {
        std::vector<sim::TaskId> fused_tasks;
        for (topology::AccId acc : members) {
          const accel::AcceleratorDesign& design =
              problem_->adaptive
                  ? problem_->designs->design(set.design)
                  : problem_->designs->design(
                        problem_->topo->accelerator(acc).fixed_design);
          const Seconds duration = design.frequency().time_for(
              design.dram_cycles(fused / static_cast<double>(p)));
          fused_tasks.push_back(
              tg.add_compute(acc, duration, name + "/fused", frontier));
        }
        frontier = std::move(fused_tasks);
      }

      // All-Reduce of partial sums within reduction subgroups (consecutive
      // member chunks share an output region).
      if (plan.allreduce_group > 1) {
        std::vector<sim::TaskId> reduced;
        const int r = plan.allreduce_group;
        for (int g = 0; g + r <= p; g += r) {
          const std::vector<topology::AccId> subgroup(
              members.begin() + g, members.begin() + g + r);
          const std::vector<sim::TaskId> reduced_done = sim::ring_allreduce(
              tg, subgroup, plan.allreduce_bytes, frontier, name + "/allreduce");
          reduced.insert(reduced.end(), reduced_done.begin(), reduced_done.end());
        }
        frontier = std::move(reduced);
      }

      upstream = plan.produced;
      done[static_cast<std::size_t>(layer)] = frontier;
    }
  }

  // Network output returns to the host from the final layer's set.
  const std::vector<topology::AccId> last_members =
      topology::mask_members(mapping.sets.back().accs);
  tg.add_transfer(last_members.front(), sim::kHost, spine.output_bytes(),
                  prefix + "host_output", done.back());
}

MappingEvaluator::ThroughputResult MappingEvaluator::evaluate_throughput(
    const Mapping& mapping, int batch) const {
  MARS_CHECK_ARG(batch >= 1,
                 "throughput batch must be >= 1, got " << batch);
  const graph::ConvSpine& spine = *problem_->spine;
  mapping.validate(spine, *problem_->topo, *problem_->designs,
                   problem_->adaptive);

  sim::TaskGraph tg;
  for (int b = 0; b < batch; ++b) {
    append_inference(tg, mapping, "img" + std::to_string(b) + "/");
  }
  const sim::Executor executor(*problem_->topo, problem_->sim_params);
  ThroughputResult result;
  result.makespan = executor.run(tg).makespan;
  result.images_per_second = batch / result.makespan.count();
  const Seconds single = simulate(mapping).result.makespan;
  result.pipeline_speedup = single.count() * batch / result.makespan.count();
  return result;
}

MappingEvaluator::SimOutput MappingEvaluator::simulate(const Mapping& mapping) const {
  SimOutput output{build_task_graph(mapping), {}};
  const sim::Executor executor(*problem_->topo, problem_->sim_params);
  output.result = executor.run(output.graph);
  return output;
}

EvaluationSummary MappingEvaluator::evaluate(const Mapping& mapping) const {
  EvaluationSummary summary = model_.evaluate(mapping);
  summary.simulated = simulate(mapping).result.makespan;
  return summary;
}

}  // namespace mars::core
