#include "mars/core/skeleton_space.h"

#include <algorithm>
#include <set>

#include "mars/core/baseline.h"
#include "mars/util/worker_pool.h"

namespace mars::core {
namespace {

std::vector<topology::AccSetCandidate> trivial_candidates(
    const topology::Topology& topo) {
  std::vector<topology::AccSetCandidate> out;
  for (topology::AccMask component :
       topo.components_above(topo.full_mask(), Bandwidth(0.0))) {
    out.push_back({component, topo.min_internal_bandwidth(component)});
  }
  for (topology::AccId id = 0; id < topo.size(); ++id) {
    const topology::AccMask mask = topology::mask_of(id);
    if (std::none_of(out.begin(), out.end(), [&](const auto& c) {
          return c.mask == mask;
        })) {
      out.push_back({mask, topo.min_internal_bandwidth(mask)});
    }
  }
  return out;
}

}  // namespace

SkeletonSpace::SkeletonSpace(const Problem& problem, const Config& config)
    : problem_(&problem),
      config_(config),
      profile_(*problem.designs, *problem.spine),
      candidates_(config.heuristic_candidates
                      ? topology::accset_candidates(*problem.topo)
                      : trivial_candidates(*problem.topo)),
      codec_(problem, candidates_),
      second_(problem, config.second),
      evaluator_(problem) {}

const SecondLevelResult& SkeletonSpace::second_level_for(
    const LayerAssignment& skeleton) {
  const CacheKey key{skeleton.begin, skeleton.end, skeleton.accs,
                     skeleton.design};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  return cache_.emplace(key, second_.greedy(skeleton)).first->second;
}

double SkeletonSpace::fitness(const Skeleton& skeleton) {
  // Per-set penalized latencies aggregated over the set dependency DAG
  // (models branch overlap for multi-stream workloads).
  std::vector<Seconds> latencies;
  latencies.reserve(skeleton.sets.size());
  for (const LayerAssignment& set : skeleton.sets) {
    latencies.push_back(second_level_for(set).cost.penalized);
  }
  return evaluator_.analytical()
      .aggregate_makespan(skeleton.sets, latencies)
      .count();
}

std::vector<double> SkeletonSpace::fitness_batch(
    const std::vector<Skeleton>& skeletons, util::WorkerPool* pool) {
  // Phase 1 (serial): one left-to-right sweep over the batch collecting
  // the keys the cache does not hold yet. The first appearance of a key
  // is charged as the miss (and carries the LayerAssignment the greedy
  // search will run on), every later appearance as a hit — the exact
  // counts a serial evaluation would record.
  std::vector<LayerAssignment> missing;
  std::set<CacheKey> scheduled;
  for (const Skeleton& skeleton : skeletons) {
    for (const LayerAssignment& set : skeleton.sets) {
      const CacheKey key{set.begin, set.end, set.accs, set.design};
      if (cache_.contains(key) || scheduled.contains(key)) {
        ++cache_hits_;
        continue;
      }
      ++cache_misses_;
      scheduled.insert(key);
      missing.push_back(set);
    }
  }

  // Phase 2 (parallel): price the missing keys. greedy() is a pure const
  // function of the key, so any assignment of keys to threads yields the
  // same results; the pool's static partitioning makes it deterministic
  // by construction.
  std::vector<SecondLevelResult> computed(missing.size());
  const auto price = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      computed[i] = second_.greedy(missing[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(missing.size(), price);
  } else {
    price(0, missing.size());
  }

  // Phase 3 (serial): publish in first-seen order, then aggregate each
  // skeleton from the (now fully warm) cache.
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const LayerAssignment& set = missing[i];
    cache_.emplace(CacheKey{set.begin, set.end, set.accs, set.design},
                   std::move(computed[i]));
  }
  std::vector<double> fitnesses;
  fitnesses.reserve(skeletons.size());
  for (const Skeleton& skeleton : skeletons) {
    std::vector<Seconds> latencies;
    latencies.reserve(skeleton.sets.size());
    for (const LayerAssignment& set : skeleton.sets) {
      latencies.push_back(
          cache_.at({set.begin, set.end, set.accs, set.design})
              .cost.penalized);
    }
    fitnesses.push_back(evaluator_.analytical()
                            .aggregate_makespan(skeleton.sets, latencies)
                            .count());
  }
  return fitnesses;
}

std::vector<Skeleton> SkeletonSpace::decode_batch(
    const std::vector<ga::Genome>& genomes, util::WorkerPool* pool) const {
  std::vector<Skeleton> skeletons(genomes.size());
  const auto decode = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      skeletons[i] = codec_.decode(genomes[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(genomes.size(), decode);
  } else {
    decode(0, genomes.size());
  }
  return skeletons;
}

std::vector<double> SkeletonSpace::fitness_batch(
    const std::vector<ga::Genome>& genomes, util::WorkerPool* pool) {
  return fitness_batch(decode_batch(genomes, pool), pool);
}

Mapping SkeletonSpace::complete(const Skeleton& skeleton) {
  Mapping mapping;
  for (const LayerAssignment& set : skeleton.sets) {
    LayerAssignment full = set;
    full.strategies = second_level_for(set).strategies;
    mapping.sets.push_back(std::move(full));
  }
  return mapping;
}

void SkeletonSpace::polish(Mapping& mapping, Rng& rng) const {
  for (LayerAssignment& set : mapping.sets) {
    LayerAssignment skeleton = set;
    skeleton.strategies.clear();
    Rng child = rng.fork();
    const SecondLevelResult refined =
        second_.refine(skeleton, child, &set.strategies);
    // Keep the better of greedy and refined (the GA is seeded with the
    // greedy solution, so this only guards decode drift).
    LayerAssignment trial = set;
    trial.strategies = refined.strategies;
    if (evaluator_.analytical().set_cost(trial).penalized <=
        evaluator_.analytical().set_cost(set).penalized) {
      set.strategies = refined.strategies;
    }
  }
}

Skeleton SkeletonSpace::baseline() const {
  return baseline_skeleton(*problem_, profile_);
}

}  // namespace mars::core
