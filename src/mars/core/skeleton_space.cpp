#include "mars/core/skeleton_space.h"

#include <algorithm>

#include "mars/core/baseline.h"

namespace mars::core {
namespace {

std::vector<topology::AccSetCandidate> trivial_candidates(
    const topology::Topology& topo) {
  std::vector<topology::AccSetCandidate> out;
  for (topology::AccMask component :
       topo.components_above(topo.full_mask(), Bandwidth(0.0))) {
    out.push_back({component, topo.min_internal_bandwidth(component)});
  }
  for (topology::AccId id = 0; id < topo.size(); ++id) {
    const topology::AccMask mask = topology::mask_of(id);
    if (std::none_of(out.begin(), out.end(), [&](const auto& c) {
          return c.mask == mask;
        })) {
      out.push_back({mask, topo.min_internal_bandwidth(mask)});
    }
  }
  return out;
}

}  // namespace

SkeletonSpace::SkeletonSpace(const Problem& problem, const Config& config)
    : problem_(&problem),
      config_(config),
      profile_(*problem.designs, *problem.spine),
      candidates_(config.heuristic_candidates
                      ? topology::accset_candidates(*problem.topo)
                      : trivial_candidates(*problem.topo)),
      codec_(problem, candidates_),
      second_(problem, config.second),
      evaluator_(problem) {}

const SecondLevelResult& SkeletonSpace::second_level_for(
    const LayerAssignment& skeleton) {
  const CacheKey key{skeleton.begin, skeleton.end, skeleton.accs,
                     skeleton.design};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  return cache_.emplace(key, second_.greedy(skeleton)).first->second;
}

double SkeletonSpace::fitness(const Skeleton& skeleton) {
  // Per-set penalized latencies aggregated over the set dependency DAG
  // (models branch overlap for multi-stream workloads).
  std::vector<Seconds> latencies;
  latencies.reserve(skeleton.sets.size());
  for (const LayerAssignment& set : skeleton.sets) {
    latencies.push_back(second_level_for(set).cost.penalized);
  }
  return evaluator_.analytical()
      .aggregate_makespan(skeleton.sets, latencies)
      .count();
}

Mapping SkeletonSpace::complete(const Skeleton& skeleton) {
  Mapping mapping;
  for (const LayerAssignment& set : skeleton.sets) {
    LayerAssignment full = set;
    full.strategies = second_level_for(set).strategies;
    mapping.sets.push_back(std::move(full));
  }
  return mapping;
}

void SkeletonSpace::polish(Mapping& mapping, Rng& rng) const {
  for (LayerAssignment& set : mapping.sets) {
    LayerAssignment skeleton = set;
    skeleton.strategies.clear();
    Rng child = rng.fork();
    const SecondLevelResult refined =
        second_.refine(skeleton, child, &set.strategies);
    // Keep the better of greedy and refined (the GA is seeded with the
    // greedy solution, so this only guards decode drift).
    LayerAssignment trial = set;
    trial.strategies = refined.strategies;
    if (evaluator_.analytical().set_cost(trial).penalized <=
        evaluator_.analytical().set_cost(set).penalized) {
      set.strategies = refined.strategies;
    }
  }
}

Skeleton SkeletonSpace::baseline() const {
  return baseline_skeleton(*problem_, profile_);
}

}  // namespace mars::core
