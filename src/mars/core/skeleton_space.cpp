#include "mars/core/skeleton_space.h"

#include <algorithm>
#include <unordered_set>

#include "mars/core/baseline.h"
#include "mars/util/error.h"
#include "mars/util/worker_pool.h"

namespace mars::core {
namespace {

std::vector<topology::AccSetCandidate> trivial_candidates(
    const topology::Topology& topo, topology::AccMask within) {
  std::vector<topology::AccSetCandidate> out;
  for (topology::AccMask component : topo.components_above(within, Bandwidth(0.0))) {
    out.push_back({component, topo.min_internal_bandwidth(component)});
  }
  for (topology::AccId id = 0; id < topo.size(); ++id) {
    const topology::AccMask mask = topology::mask_of(id);
    if ((mask & within) == 0) continue;
    if (std::none_of(out.begin(), out.end(), [&](const auto& c) {
          return c.mask == mask;
        })) {
      out.push_back({mask, topo.min_internal_bandwidth(mask)});
    }
  }
  return out;
}

}  // namespace

SkeletonSpace::SkeletonSpace(const Problem& problem, const Config& config)
    : problem_(&problem),
      config_(config),
      profile_(*problem.designs, *problem.spine),
      candidates_(config.heuristic_candidates
                      ? topology::accset_candidates(*problem.topo,
                                                    problem.placement_mask())
                      : trivial_candidates(*problem.topo, problem.placement_mask())),
      codec_(problem, candidates_),
      second_(problem, config.second),
      evaluator_(problem),
      memo_hits_(&metrics_.counter("search.space.memo.hits")),
      memo_misses_(&metrics_.counter("search.space.memo.misses")),
      record_hits_(&metrics_.counter("search.space.records.hits")),
      record_misses_(&metrics_.counter("search.space.records.misses")),
      record_evictions_(&metrics_.counter("search.space.records.evictions")),
      delta_unchanged_(&metrics_.counter("search.space.delta.unchanged")),
      delta_bails_(&metrics_.counter("search.space.delta.bails")) {}

SkeletonSpace::~SkeletonSpace() {
  if (obs::MetricsRegistry* global = obs::metrics()) {
    metrics_.flush_to(*global);
  }
}

const SecondLevelResult& SkeletonSpace::second_level_for(
    const LayerAssignment& skeleton) {
  const CacheKey key{skeleton.begin, skeleton.end, skeleton.accs,
                     skeleton.design};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    memo_hits_->add();
    return it->second;
  }
  memo_misses_->add();
  return cache_.emplace(key, second_.greedy(skeleton)).first->second;
}

double SkeletonSpace::fitness(const Skeleton& skeleton) {
  // Per-set penalized latencies aggregated over the set dependency DAG
  // (models branch overlap for multi-stream workloads).
  std::vector<Seconds> latencies;
  latencies.reserve(skeleton.sets.size());
  for (const LayerAssignment& set : skeleton.sets) {
    latencies.push_back(second_level_for(set).cost.penalized);
  }
  return evaluator_.analytical()
      .aggregate_makespan(skeleton.sets, latencies)
      .count();
}

std::vector<std::vector<Seconds>> SkeletonSpace::price_batch(
    const std::vector<Skeleton>& skeletons, util::WorkerPool* pool) {
  // Phase 1 (serial): one left-to-right sweep over the batch collecting
  // the keys the cache does not hold yet. The first appearance of a key
  // is charged as the miss (and carries the LayerAssignment the greedy
  // search will run on), every later appearance as a hit — the exact
  // counts a serial evaluation would record. Cached latencies are read
  // out during the same probe; only keys priced this batch wait for a
  // second read after the publish.
  std::vector<LayerAssignment> missing;
  std::unordered_set<CacheKey, CacheKeyHash> scheduled;
  std::vector<std::vector<Seconds>> latencies(skeletons.size());
  std::vector<std::vector<std::size_t>> pending(skeletons.size());
  for (std::size_t i = 0; i < skeletons.size(); ++i) {
    const auto& sets = skeletons[i].sets;
    latencies[i].resize(sets.size());
    for (std::size_t s = 0; s < sets.size(); ++s) {
      const LayerAssignment& set = sets[s];
      const CacheKey key{set.begin, set.end, set.accs, set.design};
      if (const auto it = cache_.find(key); it != cache_.end()) {
        memo_hits_->add();
        latencies[i][s] = it->second.cost.penalized;
        continue;
      }
      if (scheduled.contains(key)) {
        memo_hits_->add();
      } else {
        memo_misses_->add();
        scheduled.insert(key);
        missing.push_back(set);
      }
      pending[i].push_back(s);
    }
  }

  // Phase 2 (parallel): price the missing keys. greedy() is a pure const
  // function of the key, so any assignment of keys to threads yields the
  // same results; the pool's static partitioning makes it deterministic
  // by construction.
  std::vector<SecondLevelResult> computed(missing.size());
  const auto price = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      computed[i] = second_.greedy(missing[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(missing.size(), price);
  } else {
    price(0, missing.size());
  }

  // Phase 3 (serial): publish in first-seen order, then fill the latency
  // slots that waited on this batch's pricing from the now-warm cache.
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const LayerAssignment& set = missing[i];
    cache_.emplace(CacheKey{set.begin, set.end, set.accs, set.design},
                   std::move(computed[i]));
  }
  for (std::size_t i = 0; i < skeletons.size(); ++i) {
    for (const std::size_t s : pending[i]) {
      const LayerAssignment& set = skeletons[i].sets[s];
      latencies[i][s] = cache_.at({set.begin, set.end, set.accs, set.design})
                            .cost.penalized;
    }
  }
  return latencies;
}

std::vector<double> SkeletonSpace::fitness_batch(
    const std::vector<Skeleton>& skeletons, util::WorkerPool* pool) {
  const std::vector<std::vector<Seconds>> latencies =
      price_batch(skeletons, pool);
  std::vector<double> fitnesses;
  fitnesses.reserve(skeletons.size());
  for (std::size_t i = 0; i < skeletons.size(); ++i) {
    fitnesses.push_back(evaluator_.analytical()
                            .aggregate_makespan(skeletons[i].sets, latencies[i])
                            .count());
  }
  return fitnesses;
}

std::vector<Skeleton> SkeletonSpace::decode_batch(
    const std::vector<ga::Genome>& genomes, util::WorkerPool* pool) const {
  std::vector<Skeleton> skeletons(genomes.size());
  const auto decode = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      skeletons[i] = codec_.decode(genomes[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(genomes.size(), decode);
  } else {
    decode(0, genomes.size());
  }
  return skeletons;
}

std::vector<double> SkeletonSpace::fitness_batch(
    const std::vector<ga::Genome>& genomes, util::WorkerPool* pool) {
  // Decode with traces so every priced genome leaves an EvalRecord behind:
  // a later fitness_delta_batch() generation can then mutate any member of
  // this cohort incrementally.
  std::vector<Skeleton> skeletons(genomes.size());
  std::vector<FirstLevelCodec::DecodeTrace> traces(genomes.size());
  const auto decode = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      skeletons[i] = codec_.decode(genomes[i], &traces[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(genomes.size(), decode);
  } else {
    decode(0, genomes.size());
  }

  std::vector<std::vector<Seconds>> latencies = price_batch(skeletons, pool);
  std::vector<double> fitnesses(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    fitnesses[i] = evaluator_.analytical()
                       .aggregate_makespan(skeletons[i].sets, latencies[i])
                       .count();
    remember(genomes[i], std::make_shared<const EvalPayload>(EvalPayload{
                             std::move(traces[i]), std::move(skeletons[i]),
                             std::move(latencies[i]), fitnesses[i]}));
  }
  return fitnesses;
}

std::vector<double> SkeletonSpace::fitness_delta_batch(
    const std::vector<ga::Genome>& parents,
    const std::vector<ga::Genome>& children,
    const std::vector<GenomeDelta>& deltas, util::WorkerPool* pool) {
  MARS_CHECK_ARG(children.size() == deltas.size(),
                 "one GenomeDelta per child required");
  const std::size_t n = children.size();

  // Phase 1 (serial): decode each child — incrementally when its parent's
  // record is on hand — and run the same left-to-right hit/miss sweep as
  // price_batch. When retrace() reports the move left the decode trace
  // untouched (the common case for small engine moves), the child's
  // skeleton is the parent's, so the whole evaluation short-circuits:
  // every set is a hit and the fitness is the parent's double verbatim —
  // exactly what re-aggregating the identical sets and latencies would
  // return — and the child's record aliases the parent payload without
  // assembling, copying, or aggregating anything. For genuinely changed
  // skeletons, boundary moves shift only the sets between the two touched
  // entries, so the positionally unchanged prefix and suffix of the set
  // list reuse the parent's latencies and are charged as hits outright:
  // records only describe published skeletons and the cache never evicts,
  // so the full path would find those keys in cache_ too. Parent payloads
  // are held by shared_ptr, so a records_ eviction inside remember()
  // cannot invalidate them.
  std::vector<Skeleton> skeletons(n);
  std::vector<FirstLevelCodec::DecodeTrace> traces(n);
  std::vector<char> unchanged(n, 0);
  std::vector<std::vector<Seconds>> latencies(n);
  std::vector<std::vector<std::size_t>> pending(n);
  std::vector<EvalRecord> parent_records(parents.size());
  std::vector<char> parent_looked(parents.size(), 0);
  std::vector<LayerAssignment> missing;
  std::unordered_set<CacheKey, CacheKeyHash> scheduled;
  const auto same_key = [](const LayerAssignment& a, const LayerAssignment& b) {
    return a.begin == b.begin && a.end == b.end && a.accs == b.accs &&
           a.design == b.design;
  };
  for (std::size_t i = 0; i < n; ++i) {
    MARS_CHECK_ARG(deltas[i].parent < parents.size(),
                   "delta parent index " << deltas[i].parent
                                         << " outside a cohort of "
                                         << parents.size());
    // recall() once per distinct parent: records_ cannot change before
    // phase 3, and the shared_ptr keeps every looked-up payload alive.
    const std::size_t p = deltas[i].parent;
    if (!parent_looked[p]) {
      parent_records[p] = recall(parents[p]);
      parent_looked[p] = 1;
    }
    const EvalPayload* record = parent_records[p].get();
    // A move touching more than a quarter of the genome is not incremental
    // (e.g. a crossover between diverged parents): retrace and set matching
    // would almost surely recompute everything and their bookkeeping would
    // be pure overhead, so price it through the identical full-decode
    // subpath instead.
    if (record != nullptr &&
        deltas[i].changed.size() * 4 >
            static_cast<std::size_t>(codec_.genome_size())) {
      record = nullptr;
      delta_bails_->add();
    }
    if (record == nullptr) {
      skeletons[i] = codec_.decode(children[i], &traces[i]);
    } else {
      FirstLevelCodec::Retrace rt = codec_.retrace(
          children[i], parents[p], record->trace, deltas[i].changed);
      if (rt.same) {
        // Identical trace, hence identical skeleton: S cache hits and the
        // parent's fitness, with no assembly or aggregation.
        memo_hits_->add(static_cast<long long>(record->skeleton.sets.size()));
        unchanged[i] = 1;
        delta_unchanged_->add();
        continue;
      }
      traces[i] = std::move(rt.trace);
      skeletons[i] = codec_.assemble(traces[i]);
    }

    const auto& sets = skeletons[i].sets;
    const std::size_t count = sets.size();
    latencies[i].resize(count);
    std::size_t prefix = 0;
    std::size_t suffix = 0;
    if (record != nullptr) {
      const auto& psets = record->skeleton.sets;
      const std::size_t overlap = std::min(count, psets.size());
      while (prefix < overlap && same_key(sets[prefix], psets[prefix])) {
        latencies[i][prefix] = record->latencies[prefix];
        ++prefix;
      }
      while (suffix < overlap - prefix &&
             same_key(sets[count - 1 - suffix],
                      psets[psets.size() - 1 - suffix])) {
        latencies[i][count - 1 - suffix] =
            record->latencies[psets.size() - 1 - suffix];
        ++suffix;
      }
      memo_hits_->add(static_cast<long long>(prefix + suffix));
    }
    for (std::size_t s = prefix; s < count - suffix; ++s) {
      const LayerAssignment& set = sets[s];
      const CacheKey key{set.begin, set.end, set.accs, set.design};
      if (const auto it = cache_.find(key); it != cache_.end()) {
        memo_hits_->add();
        latencies[i][s] = it->second.cost.penalized;
        continue;
      }
      if (scheduled.contains(key)) {
        memo_hits_->add();
      } else {
        memo_misses_->add();
        scheduled.insert(key);
        missing.push_back(set);
      }
      pending[i].push_back(s);
    }
  }

  // Phase 2 (parallel): identical to price_batch — the genuinely new keys
  // fan across the pool.
  std::vector<SecondLevelResult> computed(missing.size());
  const auto price = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      computed[i] = second_.greedy(missing[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(missing.size(), price);
  } else {
    price(0, missing.size());
  }

  // Phase 3 (serial): publish in first-seen order, then aggregate.
  // Parent-matched sets reuse the recorded latency — the exact double
  // copied out of the same cache entry — and everything else reads the
  // warm cache.
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const LayerAssignment& set = missing[i];
    cache_.emplace(CacheKey{set.begin, set.end, set.accs, set.design},
                   std::move(computed[i]));
  }
  std::vector<double> fitnesses(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (unchanged[i]) {
      // Same sets, same latencies — the aggregate is the parent's double,
      // and the child's record is the parent payload itself.
      const EvalRecord& record = parent_records[deltas[i].parent];
      fitnesses[i] = record->fitness;
      remember(children[i], record);
      continue;
    }
    for (const std::size_t s : pending[i]) {
      const LayerAssignment& set = skeletons[i].sets[s];
      latencies[i][s] = cache_.at({set.begin, set.end, set.accs, set.design})
                            .cost.penalized;
    }
    fitnesses[i] = evaluator_.analytical()
                       .aggregate_makespan(skeletons[i].sets, latencies[i])
                       .count();
    remember(children[i], std::make_shared<const EvalPayload>(EvalPayload{
                              std::move(traces[i]), std::move(skeletons[i]),
                              std::move(latencies[i]), fitnesses[i]}));
  }
  return fitnesses;
}

SkeletonSpace::EvalRecord SkeletonSpace::recall(const ga::Genome& genome) const {
  if (records_.empty()) {
    record_misses_->add();
    return nullptr;
  }
  const RecordSlot& slot = records_[GenomeHash{}(genome) % kRecordSlots];
  if (slot.record != nullptr && slot.genome == genome) {
    record_hits_->add();
    return slot.record;
  }
  record_misses_->add();
  return nullptr;
}

void SkeletonSpace::remember(const ga::Genome& genome, EvalRecord record) {
  if (records_.empty()) records_.resize(kRecordSlots);
  RecordSlot& slot = records_[GenomeHash{}(genome) % kRecordSlots];
  if (slot.record != nullptr && !(slot.genome == genome)) {
    record_evictions_->add();  // direct-mapped collision overwrites the slot
  }
  slot.genome = genome;  // assignment reuses the slot's capacity
  slot.record = std::move(record);
}

Mapping SkeletonSpace::complete(const Skeleton& skeleton) {
  Mapping mapping;
  for (const LayerAssignment& set : skeleton.sets) {
    LayerAssignment full = set;
    full.strategies = second_level_for(set).strategies;
    mapping.sets.push_back(std::move(full));
  }
  return mapping;
}

void SkeletonSpace::polish(Mapping& mapping, Rng& rng) const {
  for (LayerAssignment& set : mapping.sets) {
    LayerAssignment skeleton = set;
    skeleton.strategies.clear();
    Rng child = rng.fork();
    const SecondLevelResult refined =
        second_.refine(skeleton, child, &set.strategies);
    // Keep the better of greedy and refined (the GA is seeded with the
    // greedy solution, so this only guards decode drift).
    LayerAssignment trial = set;
    trial.strategies = refined.strategies;
    if (evaluator_.analytical().set_cost(trial).penalized <=
        evaluator_.analytical().set_cost(set).penalized) {
      set.strategies = refined.strategies;
    }
  }
}

Skeleton SkeletonSpace::baseline() const {
  return baseline_skeleton(*problem_, profile_);
}

}  // namespace mars::core
