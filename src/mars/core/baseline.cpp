#include "mars/core/baseline.h"

#include <algorithm>
#include <numeric>

#include "mars/util/error.h"

namespace mars::core {

Skeleton baseline_skeleton(const Problem& problem,
                           const accel::ProfileMatrix& profile) {
  problem.validate();
  const topology::Topology& topo = *problem.topo;
  const topology::AccMask placement = problem.placement_mask();

  // The two groups: direct-link connected components, or a balanced
  // bisection when the system is one component. Confined to the problem's
  // placement mask so a co-mapped tenant's baseline stays inside its slice.
  std::vector<topology::AccMask> groups =
      topo.components_above(placement, Bandwidth(1.0));
  if (groups.size() == 1 && topology::mask_count(placement) >= 2) {
    const std::vector<topology::AccId> members =
        topology::mask_members(groups.front());
    topology::AccMask lo = 0;
    topology::AccMask hi = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < members.size() / 2 ? lo : hi) |= topology::mask_of(members[i]);
    }
    groups = {lo, hi};
  }
  std::sort(groups.begin(), groups.end());
  MARS_CHECK(!groups.empty(), "topology has no groups");

  const int num_layers = problem.spine->size();
  const int num_groups = static_cast<int>(groups.size());

  Skeleton skeleton;
  int cursor = 0;
  for (int g = 0; g < num_groups; ++g) {
    LayerAssignment set;
    set.accs = groups[static_cast<std::size_t>(g)];
    set.begin = cursor;
    set.end = g + 1 == num_groups
                  ? num_layers
                  : std::min(num_layers, cursor + (num_layers + num_groups - 1) /
                                                      num_groups);
    if (set.end <= set.begin) continue;
    cursor = set.end;

    if (problem.adaptive) {
      // Lowest summed computation latency over the set's layers.
      accel::DesignId best = 0;
      double best_cycles = 0.0;
      for (accel::DesignId d = 0; d < problem.designs->size(); ++d) {
        double cycles = 0.0;
        for (int l = set.begin; l < set.end; ++l) cycles += profile.at(d, l).cycles;
        if (d == 0 || cycles < best_cycles) {
          best = d;
          best_cycles = cycles;
        }
      }
      set.design = best;
    }
    skeleton.sets.push_back(set);
  }
  MARS_CHECK(cursor == num_layers, "baseline failed to cover the spine");
  return skeleton;
}

parallel::Strategy baseline_strategy(const graph::ConvShape& shape, int p) {
  if (p <= 1) return parallel::Strategy{};

  // Dims ordered by extent, descending (stable on ties).
  std::vector<parallel::Dim> order(parallel::kAllDims.begin(),
                                   parallel::kAllDims.end());
  std::stable_sort(order.begin(), order.end(),
                   [&](parallel::Dim a, parallel::Dim b) {
                     return dim_extent(shape, a) > dim_extent(shape, b);
                   });

  // Prefer the most balanced two-factor split (4 -> 2x2, 8 -> 4x2); fall
  // back to a single split when a factor does not fit.
  std::vector<int> factors;
  for (int f = static_cast<int>(std::sqrt(static_cast<double>(p))); f >= 2; --f) {
    if (p % f == 0) {
      factors = {p / f, f};
      break;
    }
  }
  if (factors.empty()) factors = {p};

  std::vector<parallel::DimSplit> es;
  int used = 0;
  for (int factor : factors) {
    for (parallel::Dim dim : order) {
      const int bit = 1 << static_cast<int>(dim);
      if ((used & bit) != 0) continue;
      if (dim_extent(shape, dim) < factor) continue;
      es.push_back({dim, factor});
      used |= bit;
      break;
    }
  }
  if (static_cast<int>(es.size()) != static_cast<int>(factors.size()) ||
      parallel::Strategy(es, std::nullopt).es_ways() != p) {
    // Could not place the balanced split: put everything on the widest dim.
    for (parallel::Dim dim : order) {
      if (dim_extent(shape, dim) >= p) {
        es = {{dim, p}};
        break;
      }
    }
  }
  parallel::Strategy strategy{es, std::nullopt};
  MARS_CHECK(strategy.fits(shape, p), "baseline strategy failed to fit layer "
                                          << graph::to_string(shape) << " on "
                                          << p << " accelerators");
  return strategy;
}

Mapping baseline_mapping(const Problem& problem,
                         const accel::ProfileMatrix& profile) {
  const Skeleton skeleton = baseline_skeleton(problem, profile);
  Mapping mapping;
  for (const LayerAssignment& set : skeleton.sets) {
    LayerAssignment full = set;
    for (int l = set.begin; l < set.end; ++l) {
      full.strategies.push_back(
          baseline_strategy(problem.spine->node(l).shape, set.num_accs()));
    }
    mapping.sets.push_back(std::move(full));
  }
  return mapping;
}

}  // namespace mars::core
