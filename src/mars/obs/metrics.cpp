#include "mars/obs/metrics.h"

#include <cmath>
#include <limits>

namespace mars::obs {
namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

/// Bucket exponent for a histogram observation: smallest e with
/// value <= 2^e. Non-positive values use INT_MIN as an underflow bucket.
int bucket_exponent(double value) {
  if (!(value > 0.0)) return std::numeric_limits<int>::min();
  int exponent = 0;
  // frexp: value = m * 2^exponent with m in [0.5, 1) -> value <= 2^exponent.
  (void)std::frexp(value, &exponent);
  return exponent;
}

double bucket_bound(int exponent) {
  if (exponent == std::numeric_limits<int>::min()) return 0.0;
  return std::ldexp(1.0, exponent);
}

}  // namespace

void Histogram::observe(double value) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_.count == 0) {
    state_.min = value;
    state_.max = value;
  } else {
    state_.min = std::min(state_.min, value);
    state_.max = std::max(state_.max, value);
  }
  ++state_.count;
  state_.sum += value;
  ++state_.buckets[bucket_exponent(value)];
}

long long Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.count;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.sum;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_.count == 0) return std::numeric_limits<double>::infinity();
  return state_.min;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_.count == 0) return -std::numeric_limits<double>::infinity();
  return state_.max;
}

std::vector<std::pair<double, long long>> Histogram::buckets() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<double, long long>> out;
  out.reserve(state_.buckets.size());
  for (const auto& [exponent, count] : state_.buckets) {
    out.emplace_back(bucket_bound(exponent), count);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, long long>> MetricsRegistry::counter_values()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, long long>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

long long MetricsRegistry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

void MetricsRegistry::flush_to(MetricsRegistry& target) {
  // Lock only this registry here; target.counter() takes the target's own
  // mutex. flush_to is never called in both directions concurrently (flushes
  // flow component -> installed global), so there is no lock-order cycle.
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    const long long now = counter->value();
    const long long delta = now - counter->flushed_;
    if (delta != 0) target.counter(name).add(delta);
    counter->flushed_ = now;
  }
  for (const auto& [name, gauge] : gauges_) {
    target.gauge(name).set(gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram& dest = target.histogram(name);
    const std::lock_guard<std::mutex> hist_lock(histogram->mutex_);
    const Histogram::State& cur = histogram->state_;
    Histogram::State& old = histogram->flushed_;
    const long long count_delta = cur.count - old.count;
    if (count_delta != 0) {
      const std::lock_guard<std::mutex> dest_lock(dest.mutex_);
      Histogram::State& out = dest.state_;
      if (out.count == 0) {
        out.min = cur.min;
        out.max = cur.max;
      } else {
        out.min = std::min(out.min, cur.min);
        out.max = std::max(out.max, cur.max);
      }
      out.count += count_delta;
      out.sum += cur.sum - old.sum;
      for (const auto& [exponent, count] : cur.buckets) {
        const auto it = old.buckets.find(exponent);
        const long long prev = it == old.buckets.end() ? 0 : it->second;
        if (count != prev) out.buckets[exponent] += count - prev;
      }
    }
    old = cur;
  }
}

JsonValue MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, counter] : counters_) {
    counters.set(name, JsonValue::integer(counter->value()));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.set(name, JsonValue::number(gauge->value()));
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, histogram] : histograms_) {
    const std::lock_guard<std::mutex> hist_lock(histogram->mutex_);
    const Histogram::State& state = histogram->state_;
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue::integer(state.count));
    entry.set("sum", JsonValue::number(state.sum));
    if (state.count > 0) {
      entry.set("min", JsonValue::number(state.min));
      entry.set("max", JsonValue::number(state.max));
    }
    JsonValue buckets = JsonValue::array();
    for (const auto& [exponent, count] : state.buckets) {
      JsonValue bucket = JsonValue::object();
      bucket.set("le", JsonValue::number(bucket_bound(exponent)));
      bucket.set("count", JsonValue::integer(count));
      buckets.push(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

MetricsRegistry* install_metrics(MetricsRegistry* registry) noexcept {
  return g_metrics.exchange(registry, std::memory_order_acq_rel);
}

MetricsRegistry* metrics() noexcept {
  return g_metrics.load(std::memory_order_acquire);
}

}  // namespace mars::obs
