// Deterministic tracing: span / instant / counter / nestable-async events
// in two clock domains, exported as Chrome Trace Event JSON (loadable in
// Perfetto or chrome://tracing).
//
// Clock domains map to trace processes: pid 1 is the *simulated* timeline
// (deterministic `Seconds` from the serving event loop and the simulator),
// pid 2 is *wall clock* (steady_clock since recorder construction; search
// engines and the worker pool). Tracks within a domain are named lanes
// ("acc 3", "pool worker 1"), created on demand with `track()`.
//
// Determinism contract: every event carries a global sequence number, and
// export sorts stably by (clock, timestamp, sequence). Simulated-domain
// events are only ever emitted from serial event loops, so their content
// and order — and therefore the exported pid-1 byte stream — are identical
// per seed at any worker-pool size. Wall-domain events may interleave
// freely. See docs/OBSERVABILITY.md.
//
// Emission is thread-safe via per-thread buffers (registration takes the
// recorder mutex once per thread; emission is then lock-free for that
// thread). Export (`write`/`to_json`) must run after emitting threads have
// quiesced. When no recorder is installed, the `trace()` accessor returns
// nullptr and call sites skip event construction entirely — the no-op path
// is one relaxed atomic load and allocates nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mars/util/json.h"
#include "mars/util/units.h"

namespace mars::obs {

/// Trace clock domain; doubles as the exported Chrome-trace pid - 1.
enum class Clock : std::uint8_t { kSim = 0, kWall = 1 };

/// Exported pid for a domain (pid 1 = simulated, pid 2 = wall).
[[nodiscard]] constexpr int trace_pid(Clock clock) {
  return static_cast<int>(clock) + 1;
}

class TraceRecorder {
 public:
  /// Optional per-event arguments, exported under "args".
  using Args = std::vector<std::pair<std::string, JsonValue>>;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Track (Chrome-trace tid) for a named lane in a domain; idempotent —
  /// the same name always maps to the same tid within a clock.
  [[nodiscard]] int track(Clock clock, const std::string& name);

  /// Complete span (ph "X"): `name` ran [start, start + duration) on
  /// `track`. Emitted when the span ends; export re-sorts by timestamp.
  void complete(Clock clock, int track, std::string name, Seconds start,
                Seconds duration, Args args = {});

  /// Instant event (ph "i", thread scope).
  void instant(Clock clock, int track, std::string name, Seconds ts,
               Args args = {});

  /// Counter sample (ph "C"); counters are keyed by name within a domain
  /// and render as a value-over-time lane.
  void counter(Clock clock, std::string name, Seconds ts, double value);

  /// Nestable async pair (ph "b"/"e"): spans that overlap freely, grouped
  /// by (category, id) — one lane per in-flight request.
  void async_begin(Clock clock, int track, std::string category, long long id,
                   std::string name, Seconds ts, Args args = {});
  void async_end(Clock clock, int track, std::string category, long long id,
                 std::string name, Seconds ts);

  /// Wall-clock now: time since recorder construction.
  [[nodiscard]] Seconds wall_now() const;

  [[nodiscard]] std::size_t event_count() const;

  /// Full trace document as a JsonValue tree (tests, small traces).
  [[nodiscard]] JsonValue to_json() const;

  /// Streams the trace document (same bytes as to_json().dump() plus a
  /// trailing newline) without materialising the whole tree; use this for
  /// real runs, which can reach millions of events.
  void write(std::ostream& os) const;

 private:
  struct Event {
    std::uint64_t seq = 0;
    Clock clock = Clock::kSim;
    char phase = 'X';     // 'X', 'i', 'C', 'b', 'e'
    int track = 0;
    long long id = -1;    // async id; -1 elsewhere
    double ts_us = 0.0;
    double dur_us = 0.0;  // 'X' only
    std::string name;
    std::string category;  // async category; empty elsewhere
    Args args;
  };
  struct Buffer {
    std::vector<Event> events;
  };

  Buffer& local_buffer();
  void emit(Event event);
  [[nodiscard]] JsonValue event_json(const Event& event) const;
  /// Invokes `fn` with each exported event object (metadata first, then
  /// events in (clock, ts, seq) order) under the recorder mutex.
  template <typename Fn>
  void for_each_export_json(Fn&& fn) const;

  const std::uint64_t id_;  // unique per recorder; keys thread-local caches
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_seq_{0};

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::map<std::string, int> tracks_[2];        // per clock: name -> tid
  std::vector<std::string> track_names_[2];     // per clock: tid -> name
};

/// Installs the process-wide recorder (nullptr to uninstall) and returns
/// the previous one. The caller keeps ownership and must keep the recorder
/// alive until after uninstalling it and after any in-flight spans end.
TraceRecorder* install_trace(TraceRecorder* recorder) noexcept;

/// The installed recorder, or nullptr. Call sites guard with
/// `if (auto* rec = obs::trace())` so the disabled path costs one relaxed
/// load and performs no allocation.
[[nodiscard]] TraceRecorder* trace() noexcept;

/// RAII wall-clock span on a named track: emits one complete event covering
/// construction to destruction. Zero-cost (no allocation, no lock) when no
/// recorder is installed. The track/name pointers must outlive the span.
class ScopedWallSpan {
 public:
  ScopedWallSpan(const char* track, const char* name);
  ScopedWallSpan(const ScopedWallSpan&) = delete;
  ScopedWallSpan& operator=(const ScopedWallSpan&) = delete;
  ~ScopedWallSpan();

 private:
  TraceRecorder* recorder_;
  int track_ = 0;
  const char* name_;
  Seconds start_{0.0};
};

}  // namespace mars::obs
