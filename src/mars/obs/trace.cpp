#include "mars/obs/trace.h"

#include <algorithm>
#include <ostream>

#include "mars/util/error.h"

namespace mars::obs {
namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};
std::atomic<std::uint64_t> g_next_recorder_id{1};

// Thread-local buffer cache, keyed by recorder id rather than address so a
// recorder reallocated at the same address never aliases a stale slot.
struct ThreadSlot {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local ThreadSlot t_slot;

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  if (t_slot.recorder_id == id_) {
    return *static_cast<Buffer*>(t_slot.buffer);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer& buffer = *buffers_.back();
  t_slot = ThreadSlot{id_, &buffer};
  return buffer;
}

void TraceRecorder::emit(Event event) {
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  local_buffer().events.push_back(std::move(event));
}

int TraceRecorder::track(Clock clock, const std::string& name) {
  const auto domain = static_cast<std::size_t>(clock);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = tracks_[domain].try_emplace(
      name, static_cast<int>(track_names_[domain].size()));
  if (inserted) track_names_[domain].push_back(name);
  return it->second;
}

void TraceRecorder::complete(Clock clock, int track, std::string name,
                             Seconds start, Seconds duration, Args args) {
  Event event;
  event.clock = clock;
  event.phase = 'X';
  event.track = track;
  event.ts_us = start.micros();
  event.dur_us = duration.micros();
  event.name = std::move(name);
  event.args = std::move(args);
  emit(std::move(event));
}

void TraceRecorder::instant(Clock clock, int track, std::string name,
                            Seconds ts, Args args) {
  Event event;
  event.clock = clock;
  event.phase = 'i';
  event.track = track;
  event.ts_us = ts.micros();
  event.name = std::move(name);
  event.args = std::move(args);
  emit(std::move(event));
}

void TraceRecorder::counter(Clock clock, std::string name, Seconds ts,
                            double value) {
  Event event;
  event.clock = clock;
  event.phase = 'C';
  event.track = 0;  // counters are keyed by (pid, name); tid is cosmetic
  event.ts_us = ts.micros();
  event.name = std::move(name);
  event.args.emplace_back("value", JsonValue::number(value));
  emit(std::move(event));
}

void TraceRecorder::async_begin(Clock clock, int track, std::string category,
                                long long id, std::string name, Seconds ts,
                                Args args) {
  Event event;
  event.clock = clock;
  event.phase = 'b';
  event.track = track;
  event.id = id;
  event.ts_us = ts.micros();
  event.name = std::move(name);
  event.category = std::move(category);
  event.args = std::move(args);
  emit(std::move(event));
}

void TraceRecorder::async_end(Clock clock, int track, std::string category,
                              long long id, std::string name, Seconds ts) {
  Event event;
  event.clock = clock;
  event.phase = 'e';
  event.track = track;
  event.id = id;
  event.ts_us = ts.micros();
  event.name = std::move(name);
  event.category = std::move(category);
  emit(std::move(event));
}

Seconds TraceRecorder::wall_now() const {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - epoch_;
  return Seconds(elapsed.count());
}

std::size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const std::unique_ptr<Buffer>& buffer : buffers_) {
    count += buffer->events.size();
  }
  return count;
}

JsonValue TraceRecorder::event_json(const Event& event) const {
  JsonValue out = JsonValue::object();
  out.set("name", JsonValue::string(event.name));
  if (!event.category.empty()) {
    out.set("cat", JsonValue::string(event.category));
  }
  out.set("ph", JsonValue::string(std::string(1, event.phase)));
  out.set("ts", JsonValue::number(event.ts_us));
  if (event.phase == 'X') out.set("dur", JsonValue::number(event.dur_us));
  out.set("pid", JsonValue::integer(trace_pid(event.clock)));
  out.set("tid", JsonValue::integer(event.track));
  if (event.phase == 'i') out.set("s", JsonValue::string("t"));
  if (event.phase == 'b' || event.phase == 'e') {
    out.set("id", JsonValue::integer(event.id));
  }
  if (!event.args.empty()) {
    JsonValue args = JsonValue::object();
    for (const auto& [key, value] : event.args) args.set(key, value);
    out.set("args", std::move(args));
  }
  return out;
}

template <typename Fn>
void TraceRecorder::for_each_export_json(Fn&& fn) const {
  const std::lock_guard<std::mutex> lock(mutex_);

  // Metadata: process names for the two clock domains, then thread (track)
  // names in (pid, tid) order — fixed shape, so the header is deterministic.
  for (const Clock clock : {Clock::kSim, Clock::kWall}) {
    JsonValue meta = JsonValue::object();
    meta.set("name", JsonValue::string("process_name"));
    meta.set("ph", JsonValue::string("M"));
    meta.set("pid", JsonValue::integer(trace_pid(clock)));
    meta.set("args",
             JsonValue::object().set(
                 "name", JsonValue::string(clock == Clock::kSim ? "simulated"
                                                                : "wall")));
    fn(meta);
  }
  for (const Clock clock : {Clock::kSim, Clock::kWall}) {
    const auto& names = track_names_[static_cast<std::size_t>(clock)];
    for (std::size_t tid = 0; tid < names.size(); ++tid) {
      JsonValue meta = JsonValue::object();
      meta.set("name", JsonValue::string("thread_name"));
      meta.set("ph", JsonValue::string("M"));
      meta.set("pid", JsonValue::integer(trace_pid(clock)));
      meta.set("tid", JsonValue::integer(static_cast<long long>(tid)));
      meta.set("args", JsonValue::object().set("name",
                                               JsonValue::string(names[tid])));
      fn(meta);
    }
  }

  std::vector<const Event*> events;
  std::size_t total = 0;
  for (const std::unique_ptr<Buffer>& buffer : buffers_) {
    total += buffer->events.size();
  }
  events.reserve(total);
  for (const std::unique_ptr<Buffer>& buffer : buffers_) {
    for (const Event& event : buffer->events) events.push_back(&event);
  }
  // (clock, ts, seq): grouping by domain keeps the simulated byte stream
  // independent of wall events; ts-then-seq makes timestamps monotone per
  // track (spans are emitted at end time but stamped at start time) while
  // the global sequence number breaks equal-ts ties deterministically.
  std::sort(events.begin(), events.end(), [](const Event* a, const Event* b) {
    if (a->clock != b->clock) return a->clock < b->clock;
    if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
    return a->seq < b->seq;
  });
  for (const Event* event : events) fn(event_json(*event));
}

JsonValue TraceRecorder::to_json() const {
  JsonValue events = JsonValue::array();
  for_each_export_json([&](const JsonValue& event) { events.push(event); });
  JsonValue out = JsonValue::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", JsonValue::string("ms"));
  return out;
}

void TraceRecorder::write(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for_each_export_json([&](const JsonValue& event) {
    if (!first) os << ',';
    first = false;
    os << event.dump();
  });
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

TraceRecorder* install_trace(TraceRecorder* recorder) noexcept {
  return g_trace.exchange(recorder, std::memory_order_acq_rel);
}

TraceRecorder* trace() noexcept {
  return g_trace.load(std::memory_order_acquire);
}

ScopedWallSpan::ScopedWallSpan(const char* track, const char* name)
    : recorder_(trace()), name_(name) {
  if (recorder_ == nullptr) return;
  track_ = recorder_->track(Clock::kWall, track);
  start_ = recorder_->wall_now();
}

ScopedWallSpan::~ScopedWallSpan() {
  if (recorder_ == nullptr) return;
  recorder_->complete(Clock::kWall, track_, name_, start_,
                      recorder_->wall_now() - start_);
}

}  // namespace mars::obs
