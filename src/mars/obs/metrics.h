// Central named-metric registry: counters, gauges and histograms.
//
// Components own a MetricsRegistry instance (so per-instance counts stay
// exact and testable) and flush deltas into the process-wide installed
// registry when they are destroyed; CLI front-ends install one registry for
// the whole run and export it as JSON via `--metrics FILE.json`. Metric
// updates are lock-free (relaxed atomics) on counters/gauges and
// mutex-guarded on histograms; registration and export take the registry
// mutex. Naming conventions live in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mars/util/json.h"

namespace mars::obs {

/// Monotonically increasing integer metric. Thread-safe; increments are
/// relaxed atomics, so a counter costs one uncontended atomic add.
class Counter {
 public:
  void add(long long delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] long long value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<long long> value_{0};
  long long flushed_ = 0;  // guarded by the owning registry's mutex
};

/// Last-write-wins floating-point metric (queue depth, temperature, ...).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed distribution with exact count/sum/min/max.
/// Buckets are keyed by the binary exponent e with value <= 2^e; values
/// <= 0 land in a single underflow bucket.
class Histogram {
 public:
  void observe(double value) noexcept;

  [[nodiscard]] long long count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  ///< +inf when empty
  [[nodiscard]] double max() const;  ///< -inf when empty

  /// (bucket upper bound, count) pairs in increasing bound order; the
  /// underflow bucket reports bound 0.
  [[nodiscard]] std::vector<std::pair<double, long long>> buckets() const;

 private:
  friend class MetricsRegistry;
  struct State {
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::map<int, long long> buckets;  // exponent -> count
  };

  mutable std::mutex mutex_;
  State state_;
  State flushed_;  // snapshot at last flush_to; guarded by mutex_
};

/// Named-metric registry. `counter`/`gauge`/`histogram` return stable
/// references (metrics are never removed), so hot paths resolve a metric
/// once and hold the pointer. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All counters as (name, value), sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, long long>> counter_values()
      const;
  /// Value of one counter (0 when absent; does not create it).
  [[nodiscard]] long long counter_value(const std::string& name) const;

  /// Adds everything recorded since the last flush into `target` (counters
  /// and histograms add deltas; gauges overwrite). Safe to call repeatedly;
  /// a second flush with no new activity adds nothing. Component
  /// destructors use this to fold instance metrics into the installed
  /// global registry.
  void flush_to(MetricsRegistry& target);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with keys sorted
  /// by name (std::map iteration order), so export is deterministic.
  [[nodiscard]] JsonValue to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Installs the process-wide registry (nullptr to uninstall) and returns
/// the previous one. The caller keeps ownership and must keep the registry
/// alive until after uninstalling it.
MetricsRegistry* install_metrics(MetricsRegistry* registry) noexcept;

/// The installed process-wide registry, or nullptr. Callers cache the
/// Counter* they need, so the common no-registry path is one relaxed load.
[[nodiscard]] MetricsRegistry* metrics() noexcept;

}  // namespace mars::obs
