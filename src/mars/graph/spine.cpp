#include "mars/graph/spine.h"

#include <algorithm>
#include <sstream>

#include "mars/util/error.h"

namespace mars::graph {

std::string to_string(const ConvShape& shape) {
  std::ostringstream os;
  os << "Cout=" << shape.cout << " Cin=" << shape.cin << " H=" << shape.oh
     << " W=" << shape.ow << " K=" << shape.kh << 'x' << shape.kw;
  if (shape.stride_h != 1 || shape.stride_w != 1) {
    os << " s=" << shape.stride_h;
  }
  return os.str();
}

namespace {

ConvShape shape_of(const Layer& layer) {
  ConvShape shape;
  if (layer.kind == LayerKind::kConv) {
    shape.cout = layer.conv.out_channels;
    shape.cin = layer.input_shape.c;
    shape.oh = layer.output_shape.h;
    shape.ow = layer.output_shape.w;
    shape.kh = layer.conv.kernel_h;
    shape.kw = layer.conv.kernel_w;
    shape.stride_h = layer.conv.stride_h;
    shape.stride_w = layer.conv.stride_w;
  } else {
    MARS_CHECK(layer.kind == LayerKind::kLinear, "spine node must be conv/linear");
    shape.cout = layer.linear.out_features;
    shape.cin = static_cast<int>(layer.input_shape.elements());
    shape.oh = shape.ow = shape.kh = shape.kw = 1;
  }
  return shape;
}

}  // namespace

ConvSpine ConvSpine::extract(const Graph& graph) {
  graph.validate(/*require_connected=*/false);

  ConvSpine spine;
  spine.model_name_ = graph.name();
  spine.dtype_ = graph.dtype();

  // Pass 1: create spine nodes in topological (= storage) order.
  std::vector<int> spine_index(static_cast<std::size_t>(graph.size()), -1);
  for (const Layer& layer : graph.layers()) {
    if (!layer.is_spine()) continue;
    SpineNode node;
    node.layer = layer.id;
    node.name = layer.name;
    node.shape = shape_of(layer);
    node.from_linear = layer.kind == LayerKind::kLinear;
    spine_index[static_cast<std::size_t>(layer.id)] =
        static_cast<int>(spine.nodes_.size());
    spine.nodes_.push_back(std::move(node));
  }
  MARS_CHECK_ARG(!spine.nodes_.empty(),
                 "graph '" << graph.name() << "' has no conv/linear layers");

  // latest_spine[l]: index of the latest spine node on any path into layer l
  // (or -1 when only the network input feeds it). Used to attribute fused
  // op traffic to the accelerator set that holds the producing conv.
  std::vector<int> latest_spine(static_cast<std::size_t>(graph.size()), -1);
  for (const Layer& layer : graph.layers()) {
    int latest = -1;
    if (layer.is_spine()) {
      latest = spine_index[static_cast<std::size_t>(layer.id)];
    } else {
      for (LayerId input : layer.inputs) {
        latest = std::max(latest, latest_spine[static_cast<std::size_t>(input)]);
      }
    }
    latest_spine[static_cast<std::size_t>(layer.id)] = latest;
  }

  // Pass 2: fused traffic. Every non-spine layer's output is written back to
  // the DRAM of the set owning its latest producing conv.
  for (const Layer& layer : graph.layers()) {
    if (layer.is_spine() || layer.kind == LayerKind::kInput) continue;
    const int owner = latest_spine[static_cast<std::size_t>(layer.id)];
    if (owner < 0) continue;  // pre-conv input processing: negligible
    spine.nodes_[static_cast<std::size_t>(owner)].fused_traffic +=
        layer.output_shape.bytes(graph.dtype());
  }

  // Pass 3: activation edges. Every layer's output materialises in the
  // DRAM of its owner (its latest producing conv's set; fused ops run
  // there). Data moves whenever a graph edge connects layers with
  // different owners, carrying exactly the producer's output tensor —
  // residual sums therefore cross a cut once (as the accumulated tensor),
  // not once per contributing block.
  for (const Layer& layer : graph.layers()) {
    const int consumer_owner =
        layer.is_spine() ? spine_index[static_cast<std::size_t>(layer.id)]
                         : latest_spine[static_cast<std::size_t>(layer.id)];
    for (LayerId input : layer.inputs) {
      const int producer_owner = latest_spine[static_cast<std::size_t>(input)];
      if (producer_owner == consumer_owner) continue;  // local to one set
      spine.edges_.push_back(
          {producer_owner, consumer_owner,
           graph.layer(input).output_shape.bytes(graph.dtype())});
    }
  }

  // Network output bytes: everything the graph sinks produce.
  Bytes out{};
  for (LayerId sink : graph.outputs()) {
    out += graph.layer(sink).output_shape.bytes(graph.dtype());
  }
  spine.output_bytes_ = out;
  return spine;
}

const SpineNode& ConvSpine::node(int index) const {
  MARS_CHECK_ARG(index >= 0 && index < size(), "spine index " << index
                                                              << " out of range");
  return nodes_[static_cast<std::size_t>(index)];
}

Bytes ConvSpine::cut_bytes(int cut) const {
  MARS_CHECK_ARG(cut >= 0 && cut <= size(), "cut " << cut << " out of range");
  Bytes total{};
  for (const SpineEdge& edge : edges_) {
    if (edge.producer < 0) continue;  // host input handled separately
    if (edge.producer < cut && edge.consumer >= cut) total += edge.bytes;
  }
  return total;
}

Bytes ConvSpine::spanning_bytes(int index) const {
  MARS_CHECK_ARG(index >= 0 && index < size(), "index out of range");
  Bytes total{};
  for (const SpineEdge& edge : edges_) {
    if (edge.producer < index && edge.consumer > index) total += edge.bytes;
  }
  return total;
}

Bytes ConvSpine::input_bytes() const {
  Bytes total{};
  for (const SpineEdge& edge : edges_) {
    if (edge.producer < 0) total += edge.bytes;
  }
  return total;
}

double ConvSpine::total_macs() const {
  double total = 0.0;
  for (const SpineNode& node : nodes_) total += node.shape.macs();
  return total;
}

Bytes ConvSpine::total_weight_bytes() const {
  Bytes total{};
  for (const SpineNode& node : nodes_) {
    total += node.shape.weight_bytes(dtype_);
  }
  return total;
}

}  // namespace mars::graph
