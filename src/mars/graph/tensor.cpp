#include "mars/graph/tensor.h"

#include <sstream>

namespace mars::graph {

std::string to_string(DataType dtype) {
  switch (dtype) {
    case DataType::kInt8:
      return "int8";
    case DataType::kFix16:
      return "fix16";
    case DataType::kFloat32:
      return "float32";
  }
  return "?";
}

std::string to_string(const TensorShape& shape) {
  std::ostringstream os;
  os << shape.c << 'x' << shape.h << 'x' << shape.w;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TensorShape& shape) {
  return os << to_string(shape);
}

}  // namespace mars::graph
