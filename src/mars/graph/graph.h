// DNN computation graph: a DAG of layers with shape inference and
// FLOP/parameter accounting.
//
// Layers are appended in topological order by construction (every input of a
// new layer must already exist), so the storage order doubles as the
// topological flattening the paper's formulation uses (L1..LN).
#pragma once

#include <string>
#include <vector>

#include "mars/graph/layer.h"
#include "mars/graph/tensor.h"
#include "mars/util/units.h"

namespace mars::graph {

class Graph {
 public:
  explicit Graph(std::string name, DataType dtype = DataType::kFix16);

  // --- construction -------------------------------------------------------
  LayerId add_input(TensorShape shape, std::string name = "input");
  LayerId add_conv(std::string name, LayerId input, const ConvAttrs& attrs);
  LayerId add_linear(std::string name, LayerId input, const LinearAttrs& attrs);
  LayerId add_max_pool(std::string name, LayerId input, const PoolAttrs& attrs);
  LayerId add_avg_pool(std::string name, LayerId input, const PoolAttrs& attrs);
  LayerId add_global_avg_pool(std::string name, LayerId input);
  LayerId add_batch_norm(std::string name, LayerId input);
  LayerId add_relu(std::string name, LayerId input);
  LayerId add_add(std::string name, LayerId lhs, LayerId rhs);
  LayerId add_concat(std::string name, const std::vector<LayerId>& inputs);
  LayerId add_flatten(std::string name, LayerId input);

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] DataType dtype() const { return dtype_; }
  [[nodiscard]] int size() const { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const Layer& layer(LayerId id) const;
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  /// Layers that consume `id`'s output.
  [[nodiscard]] std::vector<LayerId> consumers(LayerId id) const;

  /// Graph sinks (layers nobody consumes) — the network outputs.
  [[nodiscard]] std::vector<LayerId> outputs() const;
  /// Graph sources (kInput layers).
  [[nodiscard]] std::vector<LayerId> inputs() const;

  [[nodiscard]] double total_params() const;
  [[nodiscard]] double total_macs() const;
  /// Number of convolution layers (the paper's "#Convs" column counts
  /// convolutions only, excluding linear layers).
  [[nodiscard]] int num_convs() const;
  [[nodiscard]] int num_spine_layers() const;

  /// Structural sanity check: connectivity, shape consistency, acyclicity
  /// (guaranteed by construction but re-verified). Single-component
  /// enforcement is skipped when `require_connected` is false (multi-model
  /// union graphs from merge_models() are intentionally disconnected).
  void validate(bool require_connected = true) const;

  /// Graphviz dot rendering for debugging / documentation.
  [[nodiscard]] std::string to_dot() const;

 private:
  LayerId append(Layer layer);
  [[nodiscard]] const Layer& checked_input(LayerId id) const;

  std::string name_;
  DataType dtype_;
  std::vector<Layer> layers_;
};

}  // namespace mars::graph
