// Layer definitions for the computation-graph library.
//
// The layer menu covers what the paper's workloads need: convolutions (the
// mapping targets), linear layers (treated as 1x1 convolutions by the
// mapper), poolings, batch norm, activations, and the DAG glue (Add for
// residuals, Concat for multi-stream fusion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mars/graph/tensor.h"
#include "mars/util/units.h"

namespace mars::graph {

using LayerId = int;
inline constexpr LayerId kInvalidLayer = -1;

enum class LayerKind : std::uint8_t {
  kInput,
  kConv,
  kLinear,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kBatchNorm,
  kRelu,
  kAdd,
  kConcat,
  kFlatten,
};

[[nodiscard]] std::string to_string(LayerKind kind);

/// True for layers the mapper schedules explicitly (conv + linear); all
/// other layers are fused into the preceding spine node's memory traffic.
[[nodiscard]] constexpr bool is_spine_kind(LayerKind kind) {
  return kind == LayerKind::kConv || kind == LayerKind::kLinear;
}

struct ConvAttrs {
  int out_channels = 0;
  int kernel_h = 1;
  int kernel_w = 1;
  int stride_h = 1;
  int stride_w = 1;
  int pad_h = 0;
  int pad_w = 0;
  bool bias = true;

  [[nodiscard]] static ConvAttrs square(int out_channels, int kernel, int stride = 1,
                                        int pad = 0, bool bias = true) {
    return ConvAttrs{out_channels, kernel, kernel, stride, stride, pad, pad, bias};
  }
};

struct PoolAttrs {
  int kernel = 2;
  int stride = 2;
  int pad = 0;
};

struct LinearAttrs {
  int out_features = 0;
  bool bias = true;
};

/// A node in the computation graph. Construction goes through Graph's
/// add_* methods, which run shape inference and fill the derived fields.
struct Layer {
  LayerId id = kInvalidLayer;
  std::string name;
  LayerKind kind = LayerKind::kInput;
  std::vector<LayerId> inputs;

  ConvAttrs conv;      // valid when kind == kConv
  PoolAttrs pool;      // valid when kind is a pooling
  LinearAttrs linear;  // valid when kind == kLinear

  TensorShape input_shape;   // shape of inputs[0] (post-concat for kConcat)
  TensorShape output_shape;  // inferred

  double macs = 0.0;    // multiply-accumulate operations
  double params = 0.0;  // trainable parameter count

  [[nodiscard]] bool is_spine() const { return is_spine_kind(kind); }
};

}  // namespace mars::graph
