// Conv-spine extraction: the mapper's view of a workload.
//
// The paper's formulation flattens the DNN into a topologically-ordered
// layer sequence L1..LN and maps contiguous ranges of it to accelerator
// sets. The "layers" the mapping tables talk about are the convolution /
// linear layers; surrounding element-wise ops, poolings and batch norms are
// fused into their producing conv's memory traffic. ConvSpine performs that
// extraction and keeps the DAG structure as explicit producer->consumer
// edges so that cut costs remain well-defined for residual/multi-stream
// networks.
#pragma once

#include <string>
#include <vector>

#include "mars/graph/graph.h"
#include "mars/util/units.h"

namespace mars::graph {

/// Canonical six-dimension view of a spine layer: the nested loop
/// (Cout, Cin, H, W, Kh, Kw) from Fig. 2 of the paper, plus strides so
/// that input extents can be recovered. Linear layers are 1x1 convolutions
/// over a 1x1 feature map with Cin = in_features.
struct ConvShape {
  int cout = 0;
  int cin = 0;
  int oh = 0;  // output feature-map height (the loop bound "H")
  int ow = 0;  // output feature-map width  (the loop bound "W")
  int kh = 1;
  int kw = 1;
  int stride_h = 1;
  int stride_w = 1;

  [[nodiscard]] double macs() const {
    return static_cast<double>(cout) * cin * oh * ow * kh * kw;
  }
  /// Input extent actually consumed (ignores padding truncation at borders).
  [[nodiscard]] int ih() const { return (oh - 1) * stride_h + kh; }
  [[nodiscard]] int iw() const { return (ow - 1) * stride_w + kw; }

  [[nodiscard]] double in_elements() const {
    return static_cast<double>(cin) * ih() * iw();
  }
  [[nodiscard]] double weight_elements() const {
    return static_cast<double>(cout) * cin * kh * kw;
  }
  [[nodiscard]] double out_elements() const {
    return static_cast<double>(cout) * oh * ow;
  }

  [[nodiscard]] Bytes in_bytes(DataType dtype) const {
    return Bytes(in_elements() * bytes_per_element(dtype));
  }
  [[nodiscard]] Bytes weight_bytes(DataType dtype) const {
    return Bytes(weight_elements() * bytes_per_element(dtype));
  }
  [[nodiscard]] Bytes out_bytes(DataType dtype) const {
    return Bytes(out_elements() * bytes_per_element(dtype));
  }

  [[nodiscard]] bool is_pointwise() const { return kh == 1 && kw == 1; }

  friend bool operator==(const ConvShape&, const ConvShape&) = default;
};

[[nodiscard]] std::string to_string(const ConvShape& shape);

/// One mapper-visible layer: a conv/linear plus its fused neighbourhood.
struct SpineNode {
  LayerId layer = kInvalidLayer;  // id in the source Graph
  std::string name;
  ConvShape shape;
  bool from_linear = false;
  /// DRAM bytes moved by fused non-conv ops that run on this node's
  /// accelerator set right after the conv (ReLU/BN/pool outputs).
  Bytes fused_traffic{};
};

/// Activation flow between spine nodes. Every graph layer materialises its
/// output at its owner (the latest producing conv); an edge records the
/// bytes that move when a consumer lives with a different owner. Residual
/// sums cross as one accumulated tensor, concatenations as one edge per
/// contributing stream. `producer == -1` denotes the network input (data
/// arriving from the host).
struct SpineEdge {
  int producer = -1;  // spine index, or -1 for the network input
  int consumer = 0;   // spine index
  Bytes bytes{};
};

class ConvSpine {
 public:
  /// Builds the spine of `graph`. The graph must validate().
  [[nodiscard]] static ConvSpine extract(const Graph& graph);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const SpineNode& node(int index) const;
  [[nodiscard]] const std::vector<SpineNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<SpineEdge>& edges() const { return edges_; }
  [[nodiscard]] DataType dtype() const { return dtype_; }
  [[nodiscard]] const std::string& model_name() const { return model_name_; }

  /// Bytes crossing a cut placed before node `cut` (edges with
  /// producer < cut <= consumer). The network-input edge counts only for
  /// cut == 0 (it is a host transfer wherever the first set sits).
  [[nodiscard]] Bytes cut_bytes(int cut) const;

  /// Bytes of tensors that are live across node `index` without being its
  /// direct input (residual/branch tensors that must stay buffered).
  [[nodiscard]] Bytes spanning_bytes(int index) const;

  /// Bytes the final spine node ships back toward the host (network output).
  [[nodiscard]] Bytes output_bytes() const { return output_bytes_; }
  /// Bytes of the network input activation (arrives from the host).
  [[nodiscard]] Bytes input_bytes() const;

  [[nodiscard]] double total_macs() const;
  [[nodiscard]] Bytes total_weight_bytes() const;

 private:
  std::string model_name_;
  DataType dtype_ = DataType::kFix16;
  std::vector<SpineNode> nodes_;
  std::vector<SpineEdge> edges_;
  Bytes output_bytes_{};
};

}  // namespace mars::graph
