#include "mars/graph/layer.h"

namespace mars::graph {

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput:
      return "Input";
    case LayerKind::kConv:
      return "Conv2d";
    case LayerKind::kLinear:
      return "Linear";
    case LayerKind::kMaxPool:
      return "MaxPool";
    case LayerKind::kAvgPool:
      return "AvgPool";
    case LayerKind::kGlobalAvgPool:
      return "GlobalAvgPool";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kRelu:
      return "ReLU";
    case LayerKind::kAdd:
      return "Add";
    case LayerKind::kConcat:
      return "Concat";
    case LayerKind::kFlatten:
      return "Flatten";
  }
  return "?";
}

}  // namespace mars::graph
