#include "mars/graph/parser.h"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "mars/util/error.h"
#include "mars/util/strings.h"

namespace mars::graph {
namespace {

struct ParserState {
  std::unique_ptr<Graph> graph;
  std::map<std::string, LayerId> names;
  int line_number = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument("model parse error at line " +
                          std::to_string(line_number) + ": " + message);
  }

  LayerId resolve(const std::string& name) const {
    auto it = names.find(name);
    if (it == names.end()) fail("unknown layer '" + name + "'");
    return it->second;
  }

  void define(const std::string& name, LayerId id) {
    if (names.count(name) > 0) fail("duplicate layer name '" + name + "'");
    names[name] = id;
  }

  Graph& require_graph() {
    if (graph == nullptr) fail("'model <name>' must come first");
    return *graph;
  }
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

int parse_int(const ParserState& state, const std::string& token,
              const std::string& what) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    state.fail("expected an integer for " + what + ", got '" + token + "'");
  }
}

// Parses k<K>/s<S>/p<P> option tokens plus the `nobias` flag.
struct ConvOptions {
  int kernel = 1;
  int stride = 1;
  int pad = 0;
  bool bias = true;
  bool saw_kernel = false;
};

ConvOptions parse_conv_options(ParserState& state,
                               const std::vector<std::string>& tokens,
                               std::size_t first) {
  ConvOptions options;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "nobias") {
      options.bias = false;
    } else if (token.size() >= 2 && token[0] == 'k') {
      options.kernel = parse_int(state, token.substr(1), "kernel");
      options.saw_kernel = true;
    } else if (token.size() >= 2 && token[0] == 's') {
      options.stride = parse_int(state, token.substr(1), "stride");
    } else if (token.size() >= 2 && token[0] == 'p') {
      options.pad = parse_int(state, token.substr(1), "padding");
    } else {
      state.fail("unknown option '" + token + "'");
    }
  }
  return options;
}

DataType parse_dtype(ParserState& state, const std::string& token) {
  if (token == "fix16") return DataType::kFix16;
  if (token == "int8") return DataType::kInt8;
  if (token == "float32") return DataType::kFloat32;
  state.fail("unknown dtype '" + token + "' (fix16|int8|float32)");
}

}  // namespace

Graph parse_model(const std::string& text) {
  ParserState state;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    ++state.line_number;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& op = tokens.front();

    auto need = [&](std::size_t count) {
      if (tokens.size() < count) {
        state.fail("'" + op + "' needs at least " + std::to_string(count - 1) +
                   " arguments");
      }
    };

    if (op == "model") {
      need(2);
      if (state.graph != nullptr) state.fail("duplicate 'model' directive");
      const DataType dtype =
          tokens.size() > 2 ? parse_dtype(state, tokens[2]) : DataType::kFix16;
      state.graph = std::make_unique<Graph>(tokens[1], dtype);
      continue;
    }

    Graph& g = state.require_graph();
    if (op == "input") {
      need(5);
      const TensorShape shape{parse_int(state, tokens[2], "channels"),
                              parse_int(state, tokens[3], "height"),
                              parse_int(state, tokens[4], "width")};
      state.define(tokens[1], g.add_input(shape, tokens[1]));
    } else if (op == "conv") {
      need(5);
      const LayerId input = state.resolve(tokens[2]);
      const int cout = parse_int(state, tokens[3], "out channels");
      const ConvOptions o = parse_conv_options(state, tokens, 4);
      if (!o.saw_kernel) state.fail("conv needs a k<K> option");
      state.define(tokens[1],
                   g.add_conv(tokens[1], input,
                              ConvAttrs::square(cout, o.kernel, o.stride, o.pad,
                                                o.bias)));
    } else if (op == "linear") {
      need(4);
      const LayerId input = state.resolve(tokens[2]);
      const int features = parse_int(state, tokens[3], "out features");
      const bool bias = tokens.size() < 5 || tokens[4] != "nobias";
      state.define(tokens[1], g.add_linear(tokens[1], input, {features, bias}));
    } else if (op == "maxpool" || op == "avgpool") {
      need(4);
      const LayerId input = state.resolve(tokens[2]);
      ConvOptions o = parse_conv_options(state, tokens, 3);
      if (!o.saw_kernel) state.fail(op + " needs a k<K> option");
      if (o.stride == 1) o.stride = o.kernel;  // pooling default
      const PoolAttrs attrs{o.kernel, o.stride, o.pad};
      state.define(tokens[1], op == "maxpool"
                                  ? g.add_max_pool(tokens[1], input, attrs)
                                  : g.add_avg_pool(tokens[1], input, attrs));
    } else if (op == "gap") {
      need(3);
      state.define(tokens[1],
                   g.add_global_avg_pool(tokens[1], state.resolve(tokens[2])));
    } else if (op == "bn") {
      need(3);
      state.define(tokens[1],
                   g.add_batch_norm(tokens[1], state.resolve(tokens[2])));
    } else if (op == "relu") {
      need(3);
      state.define(tokens[1], g.add_relu(tokens[1], state.resolve(tokens[2])));
    } else if (op == "flatten") {
      need(3);
      state.define(tokens[1],
                   g.add_flatten(tokens[1], state.resolve(tokens[2])));
    } else if (op == "add") {
      need(4);
      state.define(tokens[1], g.add_add(tokens[1], state.resolve(tokens[2]),
                                        state.resolve(tokens[3])));
    } else if (op == "concat") {
      need(4);
      std::vector<LayerId> inputs;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        inputs.push_back(state.resolve(tokens[i]));
      }
      state.define(tokens[1], g.add_concat(tokens[1], inputs));
    } else {
      state.fail("unknown op '" + op + "'");
    }
  }
  if (state.graph == nullptr) {
    throw InvalidArgument("model description is empty");
  }
  state.graph->validate();
  return std::move(*state.graph);
}

Graph parse_model_file(const std::string& path) {
  std::ifstream file(path);
  MARS_CHECK_ARG(file.good(), "cannot open model file '" << path << "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_model(buffer.str());
}

}  // namespace mars::graph
