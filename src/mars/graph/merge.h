// Multi-DNN workloads: merge several models into one mappable graph.
//
// Herald (the system the paper's baseline extends) targets multi-DNN
// serving; MARS handles the same scenario by mapping the union graph —
// independent models become independent branches of one DAG, so the
// first level can give each model its own accelerator set (and the
// DAG-aware evaluator overlaps them), or co-locate them when that wins.
#pragma once

#include <string>
#include <vector>

#include "mars/graph/graph.h"

namespace mars::graph {

/// Concatenates the layer lists of `models` into one graph named `name`
/// (layer names prefixed "m<i>." to stay unique). All models must share
/// the same element type. The result has one input/output per model.
[[nodiscard]] Graph merge_models(const std::string& name,
                                 const std::vector<const Graph*>& models);

}  // namespace mars::graph
