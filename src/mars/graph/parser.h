// Text-format model descriptions: build computation graphs without C++.
//
// Line-based format, one layer per line:
//
//   # comment (and blank lines) ignored
//   model  <name> [fix16|int8|float32]
//   input  <name> <C> <H> <W>
//   conv   <name> <input> <Cout> k<K> [s<S>] [p<P>] [nobias]
//   linear <name> <input> <features> [nobias]
//   maxpool <name> <input> k<K> [s<S>] [p<P>]
//   avgpool <name> <input> k<K> [s<S>] [p<P>]
//   gap    <name> <input>
//   bn     <name> <input>
//   relu   <name> <input>
//   flatten <name> <input>
//   add    <name> <lhs> <rhs>
//   concat <name> <input> <input> [...]
//
// Names are unique identifiers; layers reference inputs by name, so
// branches and residuals are natural. Throws InvalidArgument with the
// offending line number on malformed input.
#pragma once

#include <string>

#include "mars/graph/graph.h"

namespace mars::graph {

/// Parses a model description from text.
[[nodiscard]] Graph parse_model(const std::string& text);

/// Convenience: reads `path` and parses it.
[[nodiscard]] Graph parse_model_file(const std::string& path);

}  // namespace mars::graph
