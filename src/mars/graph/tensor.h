// Tensor shapes and element types for DNN computation graphs.
//
// MARS maps single-inference workloads (batch = 1), so activations are
// C x H x W. Weight tensors are described by the owning layer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "mars/util/units.h"

namespace mars::graph {

/// On-accelerator element type. FPGA CNN accelerators in the paper's design
/// menu operate on 16-bit fixed point; fp32 is available for sensitivity
/// studies.
enum class DataType : std::uint8_t { kInt8 = 1, kFix16 = 2, kFloat32 = 4 };

[[nodiscard]] constexpr int bytes_per_element(DataType dtype) {
  return static_cast<int>(dtype);
}

[[nodiscard]] std::string to_string(DataType dtype);

/// Activation shape (channels x height x width), batch implicit = 1.
struct TensorShape {
  int c = 0;
  int h = 0;
  int w = 0;

  [[nodiscard]] constexpr std::int64_t elements() const {
    return static_cast<std::int64_t>(c) * h * w;
  }
  [[nodiscard]] constexpr Bytes bytes(DataType dtype) const {
    return Bytes(static_cast<double>(elements()) * bytes_per_element(dtype));
  }
  [[nodiscard]] constexpr bool valid() const { return c > 0 && h > 0 && w > 0; }

  friend constexpr bool operator==(const TensorShape&, const TensorShape&) = default;
};

[[nodiscard]] std::string to_string(const TensorShape& shape);
std::ostream& operator<<(std::ostream& os, const TensorShape& shape);

}  // namespace mars::graph
