#include "mars/graph/graph.h"

#include <algorithm>
#include <sstream>

#include "mars/util/error.h"

namespace mars::graph {
namespace {

int pooled_extent(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

Graph::Graph(std::string name, DataType dtype)
    : name_(std::move(name)), dtype_(dtype) {
  MARS_CHECK_ARG(!name_.empty(), "graph needs a name");
}

LayerId Graph::append(Layer layer) {
  layer.id = static_cast<LayerId>(layers_.size());
  for (LayerId input : layer.inputs) {
    MARS_CHECK_ARG(input >= 0 && input < layer.id,
                   "layer '" << layer.name
                             << "' references a not-yet-defined input " << input
                             << " (layers must be appended in topological order)");
  }
  MARS_CHECK(layer.output_shape.valid(),
             "layer '" << layer.name << "' produced invalid shape "
                       << to_string(layer.output_shape));
  layers_.push_back(std::move(layer));
  return layers_.back().id;
}

const Layer& Graph::checked_input(LayerId id) const {
  MARS_CHECK_ARG(id >= 0 && id < size(), "layer id " << id << " out of range");
  return layers_[static_cast<std::size_t>(id)];
}

LayerId Graph::add_input(TensorShape shape, std::string name) {
  MARS_CHECK_ARG(shape.valid(), "input shape must be positive");
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kInput;
  layer.input_shape = shape;
  layer.output_shape = shape;
  return append(std::move(layer));
}

LayerId Graph::add_conv(std::string name, LayerId input, const ConvAttrs& attrs) {
  const Layer& src = checked_input(input);
  const TensorShape in = src.output_shape;
  MARS_CHECK_ARG(attrs.out_channels > 0, "conv '" << name << "' needs out_channels");
  MARS_CHECK_ARG(attrs.kernel_h > 0 && attrs.kernel_w > 0,
                 "conv '" << name << "' needs a positive kernel");
  MARS_CHECK_ARG(attrs.stride_h > 0 && attrs.stride_w > 0,
                 "conv '" << name << "' needs a positive stride");
  const int oh = pooled_extent(in.h, attrs.kernel_h, attrs.stride_h, attrs.pad_h);
  const int ow = pooled_extent(in.w, attrs.kernel_w, attrs.stride_w, attrs.pad_w);
  MARS_CHECK_ARG(oh > 0 && ow > 0, "conv '" << name << "' collapses the feature map ("
                                            << to_string(in) << ")");

  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kConv;
  layer.inputs = {input};
  layer.conv = attrs;
  layer.input_shape = in;
  layer.output_shape = {attrs.out_channels, oh, ow};
  layer.macs = static_cast<double>(attrs.out_channels) * in.c * oh * ow *
               attrs.kernel_h * attrs.kernel_w;
  layer.params = static_cast<double>(attrs.out_channels) * in.c * attrs.kernel_h *
                     attrs.kernel_w +
                 (attrs.bias ? attrs.out_channels : 0);
  return append(std::move(layer));
}

LayerId Graph::add_linear(std::string name, LayerId input, const LinearAttrs& attrs) {
  const Layer& src = checked_input(input);
  const TensorShape in = src.output_shape;
  MARS_CHECK_ARG(attrs.out_features > 0, "linear '" << name << "' needs out_features");
  const auto in_features = static_cast<double>(in.elements());

  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kLinear;
  layer.inputs = {input};
  layer.linear = attrs;
  layer.input_shape = in;
  layer.output_shape = {attrs.out_features, 1, 1};
  layer.macs = in_features * attrs.out_features;
  layer.params = in_features * attrs.out_features +
                 (attrs.bias ? attrs.out_features : 0);
  return append(std::move(layer));
}

LayerId Graph::add_max_pool(std::string name, LayerId input, const PoolAttrs& attrs) {
  const Layer& src = checked_input(input);
  const TensorShape in = src.output_shape;
  const int oh = pooled_extent(in.h, attrs.kernel, attrs.stride, attrs.pad);
  const int ow = pooled_extent(in.w, attrs.kernel, attrs.stride, attrs.pad);
  MARS_CHECK_ARG(oh > 0 && ow > 0, "pool '" << name << "' collapses the feature map");

  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kMaxPool;
  layer.inputs = {input};
  layer.pool = attrs;
  layer.input_shape = in;
  layer.output_shape = {in.c, oh, ow};
  return append(std::move(layer));
}

LayerId Graph::add_avg_pool(std::string name, LayerId input, const PoolAttrs& attrs) {
  LayerId id = add_max_pool(std::move(name), input, attrs);
  layers_.back().kind = LayerKind::kAvgPool;
  return id;
}

LayerId Graph::add_global_avg_pool(std::string name, LayerId input) {
  const Layer& src = checked_input(input);
  const TensorShape in = src.output_shape;

  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kGlobalAvgPool;
  layer.inputs = {input};
  layer.pool = PoolAttrs{in.h, in.h, 0};
  layer.input_shape = in;
  layer.output_shape = {in.c, 1, 1};
  return append(std::move(layer));
}

LayerId Graph::add_batch_norm(std::string name, LayerId input) {
  const Layer& src = checked_input(input);
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kBatchNorm;
  layer.inputs = {input};
  layer.input_shape = src.output_shape;
  layer.output_shape = src.output_shape;
  layer.params = 2.0 * src.output_shape.c;
  return append(std::move(layer));
}

LayerId Graph::add_relu(std::string name, LayerId input) {
  const Layer& src = checked_input(input);
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kRelu;
  layer.inputs = {input};
  layer.input_shape = src.output_shape;
  layer.output_shape = src.output_shape;
  return append(std::move(layer));
}

LayerId Graph::add_add(std::string name, LayerId lhs, LayerId rhs) {
  const Layer& a = checked_input(lhs);
  const Layer& b = checked_input(rhs);
  MARS_CHECK_ARG(a.output_shape == b.output_shape,
                 "add '" << name << "' shape mismatch: " << to_string(a.output_shape)
                         << " vs " << to_string(b.output_shape));
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kAdd;
  layer.inputs = {lhs, rhs};
  layer.input_shape = a.output_shape;
  layer.output_shape = a.output_shape;
  return append(std::move(layer));
}

LayerId Graph::add_concat(std::string name, const std::vector<LayerId>& inputs) {
  MARS_CHECK_ARG(inputs.size() >= 2, "concat '" << name << "' needs >= 2 inputs");
  const Layer& first = checked_input(inputs.front());
  TensorShape out = first.output_shape;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    const Layer& other = checked_input(inputs[i]);
    MARS_CHECK_ARG(other.output_shape.h == out.h && other.output_shape.w == out.w,
                   "concat '" << name << "' spatial mismatch");
    out.c += other.output_shape.c;
  }
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kConcat;
  layer.inputs = inputs;
  layer.input_shape = out;
  layer.output_shape = out;
  return append(std::move(layer));
}

LayerId Graph::add_flatten(std::string name, LayerId input) {
  const Layer& src = checked_input(input);
  Layer layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kFlatten;
  layer.inputs = {input};
  layer.input_shape = src.output_shape;
  layer.output_shape = {static_cast<int>(src.output_shape.elements()), 1, 1};
  return append(std::move(layer));
}

const Layer& Graph::layer(LayerId id) const { return checked_input(id); }

std::vector<LayerId> Graph::consumers(LayerId id) const {
  (void)checked_input(id);
  std::vector<LayerId> out;
  for (const Layer& layer : layers_) {
    if (std::find(layer.inputs.begin(), layer.inputs.end(), id) !=
        layer.inputs.end()) {
      out.push_back(layer.id);
    }
  }
  return out;
}

std::vector<LayerId> Graph::outputs() const {
  std::vector<bool> consumed(layers_.size(), false);
  for (const Layer& layer : layers_) {
    for (LayerId input : layer.inputs) consumed[static_cast<std::size_t>(input)] = true;
  }
  std::vector<LayerId> out;
  for (const Layer& layer : layers_) {
    if (!consumed[static_cast<std::size_t>(layer.id)]) out.push_back(layer.id);
  }
  return out;
}

std::vector<LayerId> Graph::inputs() const {
  std::vector<LayerId> out;
  for (const Layer& layer : layers_) {
    if (layer.kind == LayerKind::kInput) out.push_back(layer.id);
  }
  return out;
}

double Graph::total_params() const {
  double total = 0.0;
  for (const Layer& layer : layers_) total += layer.params;
  return total;
}

double Graph::total_macs() const {
  double total = 0.0;
  for (const Layer& layer : layers_) total += layer.macs;
  return total;
}

int Graph::num_convs() const {
  int n = 0;
  for (const Layer& layer : layers_) n += layer.kind == LayerKind::kConv ? 1 : 0;
  return n;
}

int Graph::num_spine_layers() const {
  int n = 0;
  for (const Layer& layer : layers_) n += layer.is_spine() ? 1 : 0;
  return n;
}

void Graph::validate(bool require_connected) const {
  MARS_CHECK_ARG(!layers_.empty(), "graph '" << name_ << "' is empty");
  MARS_CHECK_ARG(!inputs().empty(), "graph '" << name_ << "' has no input layer");

  // Every non-input layer must have inputs; every input layer none.
  for (const Layer& layer : layers_) {
    if (layer.kind == LayerKind::kInput) {
      MARS_CHECK(layer.inputs.empty(), "input layer with predecessors");
    } else {
      MARS_CHECK(!layer.inputs.empty(),
                 "layer '" << layer.name << "' has no inputs");
    }
  }

  if (!require_connected) return;

  // Single weakly-connected component (union-find).
  std::vector<int> parent(layers_.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const Layer& layer : layers_) {
    for (LayerId input : layer.inputs) {
      parent[static_cast<std::size_t>(find(layer.id))] = find(input);
    }
  }
  const int root = find(0);
  for (const Layer& layer : layers_) {
    MARS_CHECK(find(layer.id) == root,
               "graph '" << name_ << "' is disconnected at layer '" << layer.name
                         << "'");
  }
}

std::string Graph::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const Layer& layer : layers_) {
    os << "  n" << layer.id << " [label=\"" << layer.name << "\\n"
       << to_string(layer.kind) << ' ' << to_string(layer.output_shape) << "\"];\n";
  }
  for (const Layer& layer : layers_) {
    for (LayerId input : layer.inputs) {
      os << "  n" << input << " -> n" << layer.id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace mars::graph
