#include "mars/graph/merge.h"

#include "mars/util/error.h"

namespace mars::graph {

Graph merge_models(const std::string& name,
                   const std::vector<const Graph*>& models) {
  MARS_CHECK_ARG(!models.empty(), "merge_models needs at least one model");
  for (const Graph* model : models) {
    MARS_CHECK_ARG(model != nullptr, "merge_models: null model");
    MARS_CHECK_ARG(model->dtype() == models.front()->dtype(),
                   "merge_models: element types differ");
  }

  Graph merged(name, models.front()->dtype());
  for (std::size_t m = 0; m < models.size(); ++m) {
    const Graph& source = *models[m];
    const std::string prefix = "m" + std::to_string(m) + ".";
    std::vector<LayerId> remap(static_cast<std::size_t>(source.size()),
                               kInvalidLayer);
    for (const Layer& layer : source.layers()) {
      std::vector<LayerId> inputs;
      inputs.reserve(layer.inputs.size());
      for (LayerId input : layer.inputs) {
        inputs.push_back(remap[static_cast<std::size_t>(input)]);
      }
      const std::string layer_name = prefix + layer.name;
      LayerId id = kInvalidLayer;
      switch (layer.kind) {
        case LayerKind::kInput:
          id = merged.add_input(layer.output_shape, layer_name);
          break;
        case LayerKind::kConv:
          id = merged.add_conv(layer_name, inputs.front(), layer.conv);
          break;
        case LayerKind::kLinear:
          id = merged.add_linear(layer_name, inputs.front(), layer.linear);
          break;
        case LayerKind::kMaxPool:
          id = merged.add_max_pool(layer_name, inputs.front(), layer.pool);
          break;
        case LayerKind::kAvgPool:
          id = merged.add_avg_pool(layer_name, inputs.front(), layer.pool);
          break;
        case LayerKind::kGlobalAvgPool:
          id = merged.add_global_avg_pool(layer_name, inputs.front());
          break;
        case LayerKind::kBatchNorm:
          id = merged.add_batch_norm(layer_name, inputs.front());
          break;
        case LayerKind::kRelu:
          id = merged.add_relu(layer_name, inputs.front());
          break;
        case LayerKind::kAdd:
          id = merged.add_add(layer_name, inputs[0], inputs[1]);
          break;
        case LayerKind::kConcat:
          id = merged.add_concat(layer_name, inputs);
          break;
        case LayerKind::kFlatten:
          id = merged.add_flatten(layer_name, inputs.front());
          break;
      }
      remap[static_cast<std::size_t>(layer.id)] = id;
    }
  }
  merged.validate(/*require_connected=*/false);
  return merged;
}

}  // namespace mars::graph
