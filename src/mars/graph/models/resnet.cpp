#include "mars/graph/models/models.h"

#include "mars/util/error.h"

namespace mars::graph::models {
namespace {

struct StageSpec {
  std::vector<int> blocks;  // blocks per stage
  bool bottleneck = false;
};

StageSpec resnet_spec(int depth) {
  switch (depth) {
    case 18:
      return {{2, 2, 2, 2}, false};
    case 34:
      return {{3, 4, 6, 3}, false};
    case 50:
      return {{3, 4, 6, 3}, true};
    case 101:
      return {{3, 4, 23, 3}, true};
    case 152:
      return {{3, 8, 36, 3}, true};
    default:
      MARS_THROW("unsupported ResNet depth " << depth << " (18/34/50/101/152)");
  }
}

constexpr int kExpansion = 4;  // bottleneck output expansion

// A basic residual block: 3x3 conv, 3x3 conv, identity/projection shortcut.
LayerId basic_block(Graph& g, const std::string& prefix, LayerId x, int planes,
                    int stride) {
  LayerId shortcut = x;
  LayerId y = g.add_conv(prefix + ".conv1", x, ConvAttrs::square(planes, 3, stride, 1, false));
  y = g.add_batch_norm(prefix + ".bn1", y);
  y = g.add_relu(prefix + ".relu1", y);
  y = g.add_conv(prefix + ".conv2", y, ConvAttrs::square(planes, 3, 1, 1, false));
  y = g.add_batch_norm(prefix + ".bn2", y);
  if (stride != 1 || g.layer(x).output_shape.c != planes) {
    shortcut = g.add_conv(prefix + ".downsample", x,
                          ConvAttrs::square(planes, 1, stride, 0, false));
    shortcut = g.add_batch_norm(prefix + ".downsample_bn", shortcut);
  }
  y = g.add_add(prefix + ".add", y, shortcut);
  return g.add_relu(prefix + ".relu2", y);
}

// A bottleneck block: 1x1 reduce (width), 3x3, 1x1 expand (planes *
// kExpansion). `width` already includes the WideResNet width factor.
LayerId bottleneck_block(Graph& g, const std::string& prefix, LayerId x, int width,
                         int out_channels, int stride) {
  LayerId shortcut = x;
  LayerId y = g.add_conv(prefix + ".conv1", x, ConvAttrs::square(width, 1, 1, 0, false));
  y = g.add_batch_norm(prefix + ".bn1", y);
  y = g.add_relu(prefix + ".relu1", y);
  y = g.add_conv(prefix + ".conv2", y, ConvAttrs::square(width, 3, stride, 1, false));
  y = g.add_batch_norm(prefix + ".bn2", y);
  y = g.add_relu(prefix + ".relu2", y);
  y = g.add_conv(prefix + ".conv3", y, ConvAttrs::square(out_channels, 1, 1, 0, false));
  y = g.add_batch_norm(prefix + ".bn3", y);
  if (stride != 1 || g.layer(x).output_shape.c != out_channels) {
    shortcut = g.add_conv(prefix + ".downsample", x,
                          ConvAttrs::square(out_channels, 1, stride, 0, false));
    shortcut = g.add_batch_norm(prefix + ".downsample_bn", shortcut);
  }
  y = g.add_add(prefix + ".add", y, shortcut);
  return g.add_relu(prefix + ".relu3", y);
}

}  // namespace

Graph resnet(int depth, int image, int width_factor, DataType dtype) {
  MARS_CHECK_ARG(width_factor >= 1, "width_factor must be >= 1");
  const StageSpec spec = resnet_spec(depth);

  std::string name = (width_factor > 1 ? "wrn" : "resnet") + std::to_string(depth);
  if (width_factor > 1) name += "_" + std::to_string(width_factor);
  Graph g(std::move(name), dtype);

  LayerId x = g.add_input({3, image, image});
  x = g.add_conv("conv1", x, ConvAttrs::square(64, 7, 2, 3, false));
  x = g.add_batch_norm("bn1", x);
  x = g.add_relu("relu1", x);
  x = g.add_max_pool("maxpool", x, {3, 2, 1});

  static constexpr int kPlanes[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const int stride0 = stage == 0 ? 1 : 2;
    for (int block = 0; block < spec.blocks[static_cast<std::size_t>(stage)];
         ++block) {
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(block);
      const int stride = block == 0 ? stride0 : 1;
      if (spec.bottleneck) {
        x = bottleneck_block(g, prefix, x, kPlanes[stage] * width_factor,
                             kPlanes[stage] * kExpansion, stride);
      } else {
        x = basic_block(g, prefix, x, kPlanes[stage] * width_factor, stride);
      }
    }
  }

  x = g.add_global_avg_pool("avgpool", x);
  x = g.add_flatten("flatten", x);
  g.add_linear("fc", x, {1000, true});
  return g;
}

}  // namespace mars::graph::models
