#include "mars/graph/models/models.h"

namespace mars::graph::models {

Graph alexnet(int image, DataType dtype) {
  Graph g("alexnet", dtype);
  LayerId x = g.add_input({3, image, image});

  x = g.add_conv("conv1", x, ConvAttrs::square(64, 11, 4, 2));
  x = g.add_relu("relu1", x);
  x = g.add_max_pool("pool1", x, {3, 2, 0});

  x = g.add_conv("conv2", x, ConvAttrs::square(192, 5, 1, 2));
  x = g.add_relu("relu2", x);
  x = g.add_max_pool("pool2", x, {3, 2, 0});

  x = g.add_conv("conv3", x, ConvAttrs::square(384, 3, 1, 1));
  x = g.add_relu("relu3", x);
  x = g.add_conv("conv4", x, ConvAttrs::square(256, 3, 1, 1));
  x = g.add_relu("relu4", x);
  x = g.add_conv("conv5", x, ConvAttrs::square(256, 3, 1, 1));
  x = g.add_relu("relu5", x);
  x = g.add_max_pool("pool5", x, {3, 2, 0});

  x = g.add_flatten("flatten", x);
  x = g.add_linear("fc6", x, {4096, true});
  x = g.add_relu("relu6", x);
  x = g.add_linear("fc7", x, {4096, true});
  x = g.add_relu("relu7", x);
  x = g.add_linear("fc8", x, {1000, true});
  return g;
}

}  // namespace mars::graph::models
