#include "mars/graph/models/models.h"

#include "mars/util/error.h"

namespace mars::graph::models {
namespace {

// Torchvision configuration strings; -1 encodes a max-pool ("M").
const std::vector<int>& vgg_config(int depth) {
  static const std::vector<int> kA = {64, -1, 128, -1, 256, 256, -1,
                                      512, 512, -1, 512, 512, -1};
  static const std::vector<int> kB = {64, 64, -1, 128, 128, -1, 256, 256, -1,
                                      512, 512, -1, 512, 512, -1};
  static const std::vector<int> kD = {64, 64, -1, 128, 128, -1, 256, 256, 256,
                                      -1, 512, 512, 512, -1, 512, 512, 512, -1};
  static const std::vector<int> kE = {64,  64,  -1, 128, 128, -1, 256, 256,
                                      256, 256, -1, 512, 512, 512, 512, -1,
                                      512, 512, 512, 512, -1};
  switch (depth) {
    case 11:
      return kA;
    case 13:
      return kB;
    case 16:
      return kD;
    case 19:
      return kE;
    default:
      MARS_THROW("unsupported VGG depth " << depth << " (11/13/16/19)");
  }
}

}  // namespace

Graph vgg(int depth, int image, bool batch_norm, DataType dtype) {
  Graph g("vgg" + std::to_string(depth) + (batch_norm ? "_bn" : ""), dtype);
  LayerId x = g.add_input({3, image, image});

  int conv_index = 0;
  int pool_index = 0;
  for (int entry : vgg_config(depth)) {
    if (entry == -1) {
      x = g.add_max_pool("pool" + std::to_string(++pool_index), x, {2, 2, 0});
      continue;
    }
    const std::string suffix = std::to_string(++conv_index);
    x = g.add_conv("conv" + suffix, x, ConvAttrs::square(entry, 3, 1, 1));
    if (batch_norm) x = g.add_batch_norm("bn" + suffix, x);
    x = g.add_relu("relu" + suffix, x);
  }

  x = g.add_flatten("flatten", x);
  x = g.add_linear("fc1", x, {4096, true});
  x = g.add_relu("relu_fc1", x);
  x = g.add_linear("fc2", x, {4096, true});
  x = g.add_relu("relu_fc2", x);
  x = g.add_linear("fc3", x, {1000, true});
  return g;
}

}  // namespace mars::graph::models
