#include <map>

#include "mars/graph/models/models.h"
#include "mars/util/error.h"
#include "mars/util/strings.h"

namespace mars::graph::models {
namespace {

using Factory = Graph (*)(DataType);

const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> kFactories = {
      {"alexnet", [](DataType dt) { return alexnet(224, dt); }},
      {"vgg11", [](DataType dt) { return vgg(11, 224, false, dt); }},
      {"vgg13", [](DataType dt) { return vgg(13, 224, false, dt); }},
      {"vgg16", [](DataType dt) { return vgg(16, 224, false, dt); }},
      {"vgg19", [](DataType dt) { return vgg(19, 224, false, dt); }},
      {"resnet18", [](DataType dt) { return resnet(18, 224, 1, dt); }},
      {"resnet34", [](DataType dt) { return resnet(34, 224, 1, dt); }},
      {"resnet50", [](DataType dt) { return resnet(50, 224, 1, dt); }},
      {"resnet101", [](DataType dt) { return resnet(101, 224, 1, dt); }},
      {"resnet152", [](DataType dt) { return resnet(152, 224, 1, dt); }},
      {"wrn50_2", [](DataType dt) { return resnet(50, 224, 2, dt); }},
      {"casia_surf", [](DataType dt) { return casia_surf(224, dt); }},
      {"facebagnet", [](DataType dt) { return facebagnet(96, dt); }},
  };
  return kFactories;
}

}  // namespace

Graph by_name(const std::string& name, DataType dtype) {
  const auto& table = factories();
  auto it = table.find(name);
  if (it == table.end()) {
    std::vector<std::string> names = zoo_names();
    MARS_THROW("unknown model '" << name << "'; available: " << join(names, ", "));
  }
  return it->second(dtype);
}

std::vector<std::string> zoo_names() {
  std::vector<std::string> names;
  names.reserve(factories().size());
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;
}

}  // namespace mars::graph::models
