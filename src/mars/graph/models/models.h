// Model zoo: the workloads evaluated in the paper.
//
// Table III: AlexNet, VGG16, ResNet34, ResNet101, WRN-50-2.
// Table IV: CASIA-SURF and FaceBagNet-style multi-stream heterogeneous
// models (structure from the cited papers; weights/datasets are
// proprietary, but a mapping study needs only layer shapes).
//
// Parameter and MAC counts match the published torchvision models within
// ~2% (verified by tests against the paper's Table III columns).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mars/graph/graph.h"

namespace mars::graph::models {

/// Torchvision-style AlexNet (5 convs + 3 FC, 61.1M params, ~714M MACs).
[[nodiscard]] Graph alexnet(int image = 224, DataType dtype = DataType::kFix16);

/// VGG configuration A/B/D/E (VGG-11/13/16/19), no batch norm by default.
[[nodiscard]] Graph vgg(int depth, int image = 224, bool batch_norm = false,
                        DataType dtype = DataType::kFix16);
[[nodiscard]] inline Graph vgg16(int image = 224,
                                 DataType dtype = DataType::kFix16) {
  return vgg(16, image, /*batch_norm=*/false, dtype);
}

/// ResNet-18/34 (basic blocks) and ResNet-50/101/152 (bottlenecks);
/// `width_factor` = 2 gives the WideResNet variants (WRN-50-2).
[[nodiscard]] Graph resnet(int depth, int image = 224, int width_factor = 1,
                           DataType dtype = DataType::kFix16);
[[nodiscard]] inline Graph resnet34(int image = 224,
                                    DataType dtype = DataType::kFix16) {
  return resnet(34, image, 1, dtype);
}
[[nodiscard]] inline Graph resnet101(int image = 224,
                                     DataType dtype = DataType::kFix16) {
  return resnet(101, image, 1, dtype);
}
[[nodiscard]] inline Graph wide_resnet50_2(int image = 224,
                                           DataType dtype = DataType::kFix16) {
  return resnet(50, image, 2, dtype);
}

/// CASIA-SURF-style fusion network: three modality streams (RGB, depth, IR),
/// each a ResNet-18 stem + res1 + res2, fused by concatenation and a 1x1
/// reduction, then shared res3 + res4 and a classifier.
[[nodiscard]] Graph casia_surf(int image = 224, DataType dtype = DataType::kFix16);

/// FaceBagNet-style patch-based multi-stream model: three modality
/// sub-networks on face patches, feature-level concat fusion and a shared
/// tail.
[[nodiscard]] Graph facebagnet(int patch = 96, DataType dtype = DataType::kFix16);

/// Name-indexed factory ("alexnet", "vgg16", "resnet34", "resnet101",
/// "wrn50_2", "casia_surf", "facebagnet", ...). Throws InvalidArgument for
/// unknown names.
[[nodiscard]] Graph by_name(const std::string& name,
                            DataType dtype = DataType::kFix16);

/// All model names the factory accepts.
[[nodiscard]] std::vector<std::string> zoo_names();

}  // namespace mars::graph::models
