#include "mars/graph/models/models.h"

#include "mars/util/error.h"

namespace mars::graph::models {
namespace {

// ResNet-18 style basic block reused by both multi-modal models.
LayerId mm_basic_block(Graph& g, const std::string& prefix, LayerId x, int planes,
                       int stride) {
  LayerId shortcut = x;
  LayerId y =
      g.add_conv(prefix + ".conv1", x, ConvAttrs::square(planes, 3, stride, 1, false));
  y = g.add_batch_norm(prefix + ".bn1", y);
  y = g.add_relu(prefix + ".relu1", y);
  y = g.add_conv(prefix + ".conv2", y, ConvAttrs::square(planes, 3, 1, 1, false));
  y = g.add_batch_norm(prefix + ".bn2", y);
  if (stride != 1 || g.layer(x).output_shape.c != planes) {
    shortcut = g.add_conv(prefix + ".downsample", x,
                          ConvAttrs::square(planes, 1, stride, 0, false));
    shortcut = g.add_batch_norm(prefix + ".downsample_bn", shortcut);
  }
  y = g.add_add(prefix + ".add", y, shortcut);
  return g.add_relu(prefix + ".relu2", y);
}

LayerId mm_stage(Graph& g, const std::string& prefix, LayerId x, int planes,
                 int blocks, int stride0) {
  for (int b = 0; b < blocks; ++b) {
    x = mm_basic_block(g, prefix + "." + std::to_string(b), x, planes,
                       b == 0 ? stride0 : 1);
  }
  return x;
}

}  // namespace

Graph casia_surf(int image, DataType dtype) {
  // Three modality streams (RGB / depth / IR), each a ResNet-18 front half;
  // halfway fusion by channel concat + 1x1 reduction; shared back half.
  // Structure follows the CASIA-SURF baseline network (Zhang et al.,
  // IEEE TBIOM 2020); exact channel counts from the ResNet-18 backbone.
  Graph g("casia_surf", dtype);

  static constexpr const char* kStreams[3] = {"rgb", "depth", "ir"};
  std::vector<LayerId> features;
  for (const char* stream : kStreams) {
    const std::string p = stream;
    LayerId x = g.add_input({3, image, image}, p + ".input");
    x = g.add_conv(p + ".conv1", x, ConvAttrs::square(64, 7, 2, 3, false));
    x = g.add_batch_norm(p + ".bn1", x);
    x = g.add_relu(p + ".relu1", x);
    x = g.add_max_pool(p + ".maxpool", x, {3, 2, 1});
    x = mm_stage(g, p + ".layer1", x, 64, 2, 1);
    x = mm_stage(g, p + ".layer2", x, 128, 2, 2);
    features.push_back(x);
  }

  LayerId fused = g.add_concat("fusion.concat", features);
  fused = g.add_conv("fusion.reduce", fused, ConvAttrs::square(128, 1, 1, 0, false));
  fused = g.add_batch_norm("fusion.bn", fused);
  fused = g.add_relu("fusion.relu", fused);

  LayerId x = mm_stage(g, "shared.layer3", fused, 256, 2, 2);
  x = mm_stage(g, "shared.layer4", x, 512, 2, 2);
  x = g.add_global_avg_pool("avgpool", x);
  x = g.add_flatten("flatten", x);
  g.add_linear("fc", x, {2, true});
  return g;
}

Graph facebagnet(int patch, DataType dtype) {
  // FaceBagNet (Shen et al., CVPR-W 2019): patch-level multi-stream CNN.
  // Each modality sub-network is a shallow ResNet on a face patch; fusion
  // is feature-level concat followed by a shared convolutional tail. The
  // patch input keeps spatial resolution high relative to channel width,
  // which stresses the mapper differently from full-image models.
  Graph g("facebagnet", dtype);

  static constexpr const char* kStreams[3] = {"color", "depth", "ir"};
  std::vector<LayerId> features;
  for (const char* stream : kStreams) {
    const std::string p = stream;
    LayerId x = g.add_input({3, patch, patch}, p + ".input");
    x = g.add_conv(p + ".conv1", x, ConvAttrs::square(32, 3, 1, 1, false));
    x = g.add_batch_norm(p + ".bn1", x);
    x = g.add_relu(p + ".relu1", x);
    x = g.add_conv(p + ".conv2", x, ConvAttrs::square(64, 3, 1, 1, false));
    x = g.add_batch_norm(p + ".bn2", x);
    x = g.add_relu(p + ".relu2", x);
    x = g.add_max_pool(p + ".pool", x, {2, 2, 0});
    x = mm_stage(g, p + ".res1", x, 64, 2, 1);
    x = mm_stage(g, p + ".res2", x, 128, 2, 2);
    features.push_back(x);
  }

  LayerId fused = g.add_concat("fusion.concat", features);
  fused = g.add_conv("fusion.conv", fused, ConvAttrs::square(256, 1, 1, 0, false));
  fused = g.add_batch_norm("fusion.bn", fused);
  fused = g.add_relu("fusion.relu", fused);

  LayerId x = mm_stage(g, "shared.res3", fused, 256, 2, 2);
  x = mm_stage(g, "shared.res4", x, 512, 2, 2);
  x = g.add_global_avg_pool("avgpool", x);
  x = g.add_flatten("flatten", x);
  g.add_linear("fc", x, {2, true});
  return g;
}

}  // namespace mars::graph::models
